"""Frozen copies of the pre-perf serial implementations (golden paths).

These are verbatim snapshots of the seed implementations of Equation 3
confidence scoring and Algorithm 1 predicate generation, kept so that

* the equivalence tests (``tests/test_perf_engine.py``) can assert the
  cached/batched/vectorized paths are **bitwise-identical** to what the
  code produced before this subsystem existed, and
* ``benchmarks/bench_perf_engine.py`` can time old-vs-new on the same
  inputs.

They intentionally preserve the original inefficiencies (per-predicate
region-mask recomputation, Python-loop midpoints, per-attribute
labeling) and must never be called from the live pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "golden_model_confidence",
    "golden_rank",
    "golden_generate_with_artifacts",
    "golden_filter_partitions",
    "golden_fill_gaps",
    "golden_abnormal_blocks",
]


def _golden_nearest_non_empty(labels: np.ndarray) -> tuple:
    """Seed (scan-loop) version of the nearest-non-Empty neighbour index."""
    from repro.core.partition import Label

    n = labels.shape[0]
    left = np.full(n, -1, dtype=np.int64)
    last = -1
    for i in range(n):
        left[i] = last
        if labels[i] != int(Label.EMPTY):
            last = i
    right = np.full(n, -1, dtype=np.int64)
    nxt = -1
    for i in range(n - 1, -1, -1):
        right[i] = nxt
        if labels[i] != int(Label.EMPTY):
            nxt = i
    return left, right


def golden_filter_partitions(labels: np.ndarray) -> np.ndarray:
    """Seed (Python-loop) version of Section 4.3 filtering."""
    from repro.core.partition import Label

    labels = np.asarray(labels, dtype=np.int64)
    result = labels.copy()
    left, right = _golden_nearest_non_empty(labels)
    lone_abnormal = int((labels == int(Label.ABNORMAL)).sum()) == 1
    lone_normal = int((labels == int(Label.NORMAL)).sum()) == 1
    for i in range(labels.shape[0]):
        label = labels[i]
        if label == int(Label.EMPTY):
            continue
        if label == int(Label.ABNORMAL) and lone_abnormal:
            continue
        if label == int(Label.NORMAL) and lone_normal:
            continue
        li, ri = left[i], right[i]
        if li < 0 or ri < 0:
            continue
        if labels[li] != label or labels[ri] != label:
            result[i] = int(Label.EMPTY)
    return result


def golden_fill_gaps(
    labels: np.ndarray,
    delta: float,
    normal_mean_partition: Optional[int] = None,
) -> np.ndarray:
    """Seed (Python-loop) version of Section 4.4 gap filling."""
    from repro.core.partition import Label

    labels = np.asarray(labels, dtype=np.int64).copy()
    if delta <= 0:
        raise ValueError("delta must be positive")
    has_abnormal = bool((labels == int(Label.ABNORMAL)).any())
    has_normal = bool((labels == int(Label.NORMAL)).any())
    if not has_abnormal and not has_normal:
        return labels
    if has_abnormal and not has_normal:
        if normal_mean_partition is None:
            raise ValueError(
                "only Abnormal partitions remain; normal_mean_partition required"
            )
        labels[int(normal_mean_partition)] = int(Label.NORMAL)

    left, right = _golden_nearest_non_empty(labels)
    filled = labels.copy()
    for i in range(labels.shape[0]):
        if labels[i] != int(Label.EMPTY):
            continue
        li, ri = left[i], right[i]
        if li < 0 and ri < 0:
            continue
        if li < 0:
            filled[i] = labels[ri]
            continue
        if ri < 0:
            filled[i] = labels[li]
            continue
        left_label, right_label = labels[li], labels[ri]
        if left_label == right_label:
            filled[i] = left_label
            continue
        dist_left = float(i - li)
        dist_right = float(ri - i)
        if left_label == int(Label.ABNORMAL):
            dist_abnormal, dist_normal = dist_left, dist_right
            abnormal_label, normal_label = left_label, right_label
        else:
            dist_abnormal, dist_normal = dist_right, dist_left
            abnormal_label, normal_label = right_label, left_label
        if dist_abnormal * delta < dist_normal:
            filled[i] = abnormal_label
        else:
            filled[i] = normal_label
    return filled


def golden_abnormal_blocks(labels: np.ndarray) -> list:
    """Seed (Python-loop) version of contiguous Abnormal-run extraction."""
    from repro.core.partition import Label

    labels = np.asarray(labels, dtype=np.int64)
    blocks = []
    start = None
    for i, label in enumerate(labels):
        if label == int(Label.ABNORMAL):
            if start is None:
                start = i
        elif start is not None:
            blocks.append((start, i - 1))
            start = None
    if start is not None:
        blocks.append((start, labels.shape[0] - 1))
    return blocks


def _golden_predicate_on_partitions(
    predicate,
    dataset,
    spec,
    n_partitions: int,
    apply_filtering: bool,
) -> Optional[float]:
    """Seed version of the Eq. 3 per-predicate term (masks recomputed here)."""
    filter_partitions = golden_filter_partitions
    from repro.core.partition import (
        CategoricalPartitionSpace,
        Label,
        NumericPartitionSpace,
    )

    attr = predicate.attr
    if attr not in dataset:
        return None
    values = dataset.column(attr)
    abnormal = spec.abnormal_mask(dataset)
    normal = spec.normal_mask(dataset)
    if dataset.is_numeric(attr):
        space = NumericPartitionSpace(attr, values, n_partitions)
        labels = space.label(values, abnormal, normal)
        if apply_filtering:
            labels = filter_partitions(labels)
        representatives = np.asarray(
            [space.midpoint(i) for i in range(space.n_partitions)]
        )
        satisfied = predicate.evaluate_values(representatives)
    else:
        space = CategoricalPartitionSpace(attr, values)
        labels = space.label(values, abnormal, normal)
        satisfied = predicate.evaluate_values(
            np.asarray(space.categories, dtype=object)
        )
    abnormal_parts = labels == int(Label.ABNORMAL)
    normal_parts = labels == int(Label.NORMAL)
    n_abnormal = int(abnormal_parts.sum())
    n_normal = int(normal_parts.sum())
    if n_abnormal == 0 or n_normal == 0:
        return None
    ratio_abnormal = float((satisfied & abnormal_parts).sum()) / n_abnormal
    ratio_normal = float((satisfied & normal_parts).sum()) / n_normal
    return ratio_abnormal - ratio_normal


def golden_model_confidence(
    predicates: Sequence,
    dataset,
    spec,
    n_partitions: int = 250,
    apply_filtering: bool = True,
) -> float:
    """Seed version of Equation 3 (mean per-predicate separation power)."""
    if not predicates:
        return 0.0
    total = 0.0
    for predicate in predicates:
        power = _golden_predicate_on_partitions(
            predicate, dataset, spec, n_partitions, apply_filtering
        )
        total += power if power is not None else 0.0
    return total / len(predicates)


def golden_rank(
    models: Sequence,
    dataset,
    spec,
    n_partitions: int = 250,
) -> List[Tuple[str, float]]:
    """Seed version of the model-ranking path."""
    scored = [
        (
            m.cause,
            golden_model_confidence(
                m.predicates, dataset, spec, n_partitions
            ),
        )
        for m in models
    ]
    scored.sort(key=lambda item: item[1], reverse=True)
    return scored


def golden_generate_with_artifacts(
    dataset,
    spec,
    config=None,
    attributes: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Seed version of Algorithm 1 (per-attribute labeling loop)."""
    abnormal_blocks = golden_abnormal_blocks
    fill_gaps = golden_fill_gaps
    filter_partitions = golden_filter_partitions
    from repro.core.generator import AttributeArtifacts, GeneratorConfig
    from repro.core.partition import (
        CategoricalPartitionSpace,
        Label,
        NumericPartitionSpace,
    )
    from repro.core.predicates import CategoricalPredicate, NumericPredicate
    from repro.core.separation import normalize_values, region_means

    config = config or GeneratorConfig()
    spec.validate(dataset)
    abnormal = spec.abnormal_mask(dataset)
    normal = spec.normal_mask(dataset)
    names = list(attributes) if attributes is not None else dataset.attributes
    artifacts: Dict[str, AttributeArtifacts] = {}
    for attr in names:
        values = dataset.column(attr)
        if not dataset.is_numeric(attr):
            space = CategoricalPartitionSpace(attr, values)
            labels = space.label(values, abnormal, normal)
            art = AttributeArtifacts(
                attr=attr, is_numeric=False, space=space, labels_initial=labels
            )
            abnormal_categories = [
                space.categories[i]
                for i in range(space.n_partitions)
                if labels[i] == int(Label.ABNORMAL)
            ]
            if not abnormal_categories:
                art.rejection = "no abnormal categories"
            else:
                art.predicate = CategoricalPredicate.of(attr, abnormal_categories)
            artifacts[attr] = art
            continue

        space = NumericPartitionSpace(attr, values, config.n_partitions)
        labels = space.label(values, abnormal, normal)
        art = AttributeArtifacts(
            attr=attr, is_numeric=True, space=space, labels_initial=labels
        )
        artifacts[attr] = art

        filtered = (
            filter_partitions(labels) if config.enable_filtering else labels
        )
        art.labels_filtered = filtered
        if not (filtered == int(Label.ABNORMAL)).any():
            art.rejection = "no abnormal partitions after filtering"
            continue

        if config.enable_fill:
            normal_mean_partition = None
            if not (filtered == int(Label.NORMAL)).any():
                mean_normal = float(values[normal].mean())
                normal_mean_partition = int(
                    space.partition_indices(np.asarray([mean_normal]))[0]
                )
            filled = fill_gaps(filtered, config.delta, normal_mean_partition)
        else:
            filled = filtered
        art.labels_filled = filled

        normalized = normalize_values(values)
        mu_abnormal, mu_normal = region_means(normalized, abnormal, normal)
        art.normalized_difference = abs(mu_abnormal - mu_normal)

        blocks = abnormal_blocks(filled)
        if len(blocks) != 1:
            art.rejection = f"{len(blocks)} abnormal blocks (need exactly 1)"
            continue
        if art.normalized_difference <= config.theta:
            art.rejection = (
                f"normalized difference {art.normalized_difference:.3f} "
                f"<= theta {config.theta}"
            )
            continue
        start, end = blocks[0]
        if start == 0 and end == space.n_partitions - 1:
            art.rejection = "abnormal block spans the entire domain"
            continue
        if start == 0:
            art.predicate = NumericPredicate(attr, upper=space.upper_bound(end))
        elif end == space.n_partitions - 1:
            art.predicate = NumericPredicate(attr, lower=space.lower_bound(start))
        else:
            art.predicate = NumericPredicate(
                attr,
                lower=space.lower_bound(start),
                upper=space.upper_bound(end),
            )
    return artifacts
