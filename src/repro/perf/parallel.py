"""Deterministic process-level parallelism with a serial fallback.

:func:`parallel_map` is the single fan-out primitive used by the suite
simulator and the evaluation protocols.  Design constraints:

* **Determinism** — results are returned in input order, and no RNG state
  lives in this module: every work item must carry its own seed (the
  harness assigns per-run seeds serially before fanning out), so the
  parallel and serial paths produce identical outputs.
* **Serial fallback** — with one job (the default), no pool is created;
  if pool creation or dispatch fails (restricted sandboxes, unpicklable
  work), the map silently re-runs serially.  Work functions must
  therefore be pure.
* **Override** — the ``REPRO_JOBS`` environment variable sets the default
  worker count; an explicit ``jobs=`` argument wins over it, with one
  exception: ``REPRO_JOBS=1`` is an operator's "run inline, never spawn
  a pool" veto and beats even an explicit ``jobs=``.  Small fleet shards
  hand ``jobs=`` through from their own worker budgets, and without the
  veto a 4-item map would pay ~100 ms of process-spawn overhead for
  ~1 ms of work.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.obs import trace

__all__ = ["parallel_map", "resolve_jobs", "JOBS_ENV"]

#: Environment variable naming the default worker count.
JOBS_ENV = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    ``REPRO_JOBS=1`` means "run inline, no pool spawn" and overrides even
    an explicit ``jobs=`` argument: callers that fan out on behalf of a
    larger system (fleet shards, the suite simulator) pass their own
    worker budgets through, and the environment veto is the only way an
    operator can globally disable process spawning without threading a
    flag through every layer.
    """
    env = os.environ.get(JOBS_ENV, "").strip()
    env_jobs: Optional[int] = None
    if env:
        try:
            env_jobs = max(1, int(env))
        except ValueError:
            env_jobs = 1
    if env_jobs == 1:
        return 1
    if jobs is not None:
        return max(1, int(jobs))
    return env_jobs if env_jobs is not None else 1


def _pool_context():
    """Prefer fork (cheap, inherits loaded modules) where available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class _TracedCall:
    """Picklable wrapper running *fn* attached to the parent span context.

    Worker processes adopt the coordinator's (trace id, span id, sink
    path) triple, so their spans land in the same JSON-lines file and
    parent onto the ``parallel_map`` span.  Each item runs inside its
    own ``parallel_map.worker`` span.
    """

    __slots__ = ("fn", "context")

    def __init__(self, fn, context) -> None:
        self.fn = fn
        self.context = context

    def __call__(self, item):
        with trace.attached(self.context):
            with trace.span("parallel_map.worker"):
                return self.fn(item)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map *fn* over *items*, preserving order; parallel when ``jobs > 1``.

    *fn* must be a picklable top-level callable and must be pure: on any
    pool failure (or a worker exception) the whole map is re-run serially,
    which re-raises genuine errors from *fn* in the caller's process.

    When tracing is enabled the whole map runs under a ``parallel_map``
    span, and workers attach their spans to it across the process
    boundary (see :mod:`repro.obs.trace`).
    """
    items = list(items)
    n_workers = min(resolve_jobs(jobs), len(items))
    if not trace.enabled():
        return _run_map(fn, items, n_workers, chunksize)
    with trace.span("parallel_map", items=len(items), jobs=n_workers):
        context = trace.current_context()
        wrapped = _TracedCall(fn, context) if context is not None else fn
        return _run_map(wrapped, items, n_workers, chunksize)


def _run_map(
    fn: Callable[[T], R], items: List[T], n_workers: int, chunksize: int
) -> List[R]:
    if n_workers <= 1:
        return [fn(item) for item in items]
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=n_workers, mp_context=_pool_context()
        ) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except Exception:
        # Restricted environments (no fork/sem support) or unpicklable
        # work items land here; a deterministic fn makes the serial re-run
        # equivalent, and a genuinely failing fn re-raises its own error.
        return [fn(item) for item in items]
