"""Schema reconciliation: diagnosis that survives attribute drift.

The paper's causal models (Section 6) silently assume the attribute
vocabulary is identical between training and diagnosis.  Real collectors
rename, reorder, add, and drop metrics across versions; this package
closes the gap:

``fingerprint``  :class:`AttributeFingerprint` — dtype class, value
                 range, quantile sketch / categorical domain, name
                 n-grams: the stable identity of an attribute,
                 persisted alongside each causal model;
``reconcile``    :class:`SchemaReconciler` — exact name → alias table →
                 fingerprint similarity matching with a confidence
                 threshold (below it an attribute is *missing*, never
                 mis-mapped), producing an auditable
                 :class:`ReconciliationReport`;
                 :func:`rank_with_reconciliation` — Equation 3 ranking
                 over the reconciled schema with coverage-based
                 abstention.
"""

from repro.schema.fingerprint import (
    AttributeFingerprint,
    fingerprint_attributes,
    name_similarity,
    value_similarity,
)
from repro.schema.reconcile import (
    AttributeMatch,
    RankResult,
    ReconciliationReport,
    SchemaReconciler,
    collect_fingerprints,
    rank_with_reconciliation,
)

__all__ = [
    "AttributeFingerprint",
    "AttributeMatch",
    "RankResult",
    "ReconciliationReport",
    "SchemaReconciler",
    "collect_fingerprints",
    "fingerprint_attributes",
    "name_similarity",
    "rank_with_reconciliation",
    "value_similarity",
]
