"""Persistent alias table: confirmed schema-drift resolutions.

When :class:`~repro.schema.reconcile.SchemaReconciler` resolves a
renamed attribute by fingerprint similarity, that match cost a full
fingerprint pass and carries residual uncertainty.  Once a match has
been confirmed (score above the reconciler's ``confirm_threshold``),
recording it here turns every future occurrence of the same drift into
an alias-stage lookup — no fingerprinting, score 1.0, and the mapping
survives process restarts.

The table is stored as atomic JSON (write to a temp file, ``fsync``,
``os.replace``) so a crash mid-save can never leave a torn table, and
it lives next to the causal-model store
(:meth:`repro.core.explain.DBSherlock.save_models` puts it at
``<models>.aliases.json``) because aliases are, like models, accumulated
diagnostic knowledge.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.faults import fs as _fs

__all__ = ["AliasStore"]

logger = logging.getLogger(__name__)

SCHEMA_VERSION = 1


class AliasStore:
    """Observed-name → canonical-model-name table with durable JSON backing.

    Parameters
    ----------
    path:
        JSON file backing the table.  Loaded on construction when it
        exists; a missing file starts empty.  ``None`` keeps the store
        purely in memory (useful in tests).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.aliases: Dict[str, str] = {}
        #: per observed name, the confirmation score it was recorded at.
        self.scores: Dict[str, float] = {}
        if self.path is not None and self.path.exists():
            self.load()

    def __len__(self) -> int:
        return len(self.aliases)

    def __contains__(self, data_attr: str) -> bool:
        return data_attr in self.aliases

    def get(self, data_attr: str) -> Optional[str]:
        """The canonical name *data_attr* maps to, if recorded."""
        return self.aliases.get(data_attr)

    def record(
        self, data_attr: str, canonical: str, score: float = 1.0
    ) -> bool:
        """Record a confirmed mapping; returns True when the table changed.

        An existing mapping for *data_attr* is overwritten only by a
        strictly higher score — a later, weaker match never downgrades a
        stronger confirmation.  Identity mappings are not stored (the
        exact stage already handles them).
        """
        if data_attr == canonical:
            return False
        current = self.scores.get(data_attr)
        if self.aliases.get(data_attr) == canonical:
            if current is not None and current >= score:
                return False
        elif current is not None and current > score:
            return False
        self.aliases[data_attr] = canonical
        self.scores[data_attr] = float(score)
        return True

    def update(self, mappings: Mapping[str, str], score: float = 1.0) -> int:
        """Record many mappings; returns how many changed the table."""
        return sum(
            1 for d, c in mappings.items() if self.record(d, c, score)
        )

    # ------------------------------------------------------------------
    def load(self) -> None:
        """Re-read the backing file (no-op for in-memory stores)."""
        if self.path is None:
            return
        payload = json.loads(_fs.get_fs().read_text(self.path))
        version = payload.get("version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported alias-table version {version!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        self.aliases = {
            str(k): str(v) for k, v in payload.get("aliases", {}).items()
        }
        self.scores = {
            str(k): float(v) for k, v in payload.get("scores", {}).items()
        }

    def save(self) -> bool:
        """Atomically persist the table; True when it durably landed.

        An I/O failure is *non-fatal*: confirmed aliases live on in
        memory (a later save retries the whole table), the failure is
        counted in ``repro_storage_write_errors_total``, and a warning
        is logged — ``save`` is called mid-diagnosis by the reconciler,
        where a sick disk must not abort the diagnosis itself.
        """
        if self.path is None:
            return True
        payload = {
            "version": SCHEMA_VERSION,
            "aliases": self.aliases,
            "scores": self.scores,
        }
        fsio = _fs.get_fs()
        tmp = None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent),
                prefix=self.path.name,
                suffix=".tmp",
            )
            with os.fdopen(fd, "w") as fh:
                fsio.write(fh, json.dumps(payload, indent=2, sort_keys=True))
                fsio.fsync(fh)
            fsio.replace(tmp, self.path)
            return True
        except OSError as exc:
            _fs.count_write_error()
            logger.warning(
                "alias table save to %s failed (%s); %d confirmed aliases "
                "retained in memory only",
                self.path,
                exc,
                len(self.aliases),
            )
            return False
        finally:
            if tmp is not None and os.path.exists(tmp):
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
