"""Attribute fingerprints: what an attribute *is*, independent of its name.

Causal models remember attributes by name, but DBSeer-style collectors
rename, reorder, add, and drop metrics across versions.  An
:class:`AttributeFingerprint` captures the stable identity of an
attribute — its dtype class, value range, a quantile sketch (numeric),
its categorical domain (categorical), and character n-grams of its
name — so a model trained against one collector schema can be matched
against data from another.

Fingerprints are computed once per attribute at model-building time
(:func:`fingerprint_attributes`), persisted alongside the causal model
(``core/persistence.py``), and compared at diagnosis time by the
:class:`~repro.schema.reconcile.SchemaReconciler`:

* :func:`name_similarity` — Jaccard overlap of padded character trigrams
  of the normalized names (robust to prefixes like ``v2.`` and to
  separator churn);
* :func:`value_similarity` — for numeric attributes, one minus the mean
  decile displacement relative to the larger span; for categorical
  attributes, Jaccard overlap of the observed domains.

All similarities live in [0, 1]; a kind mismatch (numeric vs
categorical) scores 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "AttributeFingerprint",
    "fingerprint_attributes",
    "name_ngrams",
    "name_similarity",
    "value_similarity",
]

#: Number of quantile points in the numeric sketch (deciles: 0, 0.1, .. 1).
N_QUANTILES = 11

#: Largest categorical domain kept verbatim; beyond this the domain is
#: truncated (collector enums are small; unbounded domains are IDs, and
#: matching them by value would be meaningless anyway).
MAX_DOMAIN = 64


@dataclass(frozen=True)
class AttributeFingerprint:
    """Distributional identity of one telemetry attribute.

    Attributes
    ----------
    name:
        The attribute name the fingerprint was taken under (the *model's*
        vocabulary; diagnosis-time data may use a different one).
    kind:
        ``"numeric"`` or ``"categorical"``.
    n_samples:
        Valid (non-NaN) samples the sketch was computed from.
    lo / hi / quantiles:
        Numeric only: value range and an ``N_QUANTILES``-point quantile
        sketch over the valid samples (``None`` for all-NaN columns).
    domain:
        Categorical only: the observed label set (capped at
        ``MAX_DOMAIN``).
    """

    name: str
    kind: str
    n_samples: int = 0
    lo: Optional[float] = None
    hi: Optional[float] = None
    quantiles: Optional[Tuple[float, ...]] = None
    domain: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.kind not in ("numeric", "categorical"):
            raise ValueError(f"unknown fingerprint kind {self.kind!r}")

    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls, name: str, values: Sequence[object], is_numeric: bool
    ) -> "AttributeFingerprint":
        """Fingerprint one attribute column."""
        if is_numeric:
            arr = np.asarray(values, dtype=np.float64)
            valid = arr[~np.isnan(arr)] if arr.size else arr
            if valid.size == 0:
                return cls(name=name, kind="numeric", n_samples=0)
            qs = np.quantile(valid, np.linspace(0.0, 1.0, N_QUANTILES))
            return cls(
                name=name,
                kind="numeric",
                n_samples=int(valid.size),
                lo=float(valid.min()),
                hi=float(valid.max()),
                quantiles=tuple(float(q) for q in qs),
            )
        labels = [str(v) for v in values]
        domain = frozenset(sorted(set(labels))[:MAX_DOMAIN])
        return cls(
            name=name,
            kind="categorical",
            n_samples=len(labels),
            domain=domain,
        )

    def merged(self, other: "AttributeFingerprint") -> "AttributeFingerprint":
        """Widen this fingerprint to cover both instances (model merging).

        Ranges take the hull, quantile sketches average weighted by sample
        count, categorical domains union — mirroring how Section 6.2
        widens predicates when models of the same cause merge.
        """
        if other.kind != self.kind:
            raise ValueError(
                f"cannot merge {self.kind} fingerprint with {other.kind}"
            )
        total = self.n_samples + other.n_samples
        if self.kind == "categorical":
            return AttributeFingerprint(
                name=self.name,
                kind="categorical",
                n_samples=total,
                domain=self.domain | other.domain,
            )
        if self.quantiles is None:
            return other if other.quantiles is not None else self
        if other.quantiles is None:
            return self
        wa = self.n_samples / total if total else 0.5
        qs = tuple(
            wa * a + (1.0 - wa) * b
            for a, b in zip(self.quantiles, other.quantiles)
        )
        return AttributeFingerprint(
            name=self.name,
            kind="numeric",
            n_samples=total,
            lo=min(self.lo, other.lo),  # type: ignore[type-var]
            hi=max(self.hi, other.hi),  # type: ignore[type-var]
            quantiles=qs,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-safe representation (inverse: :meth:`from_dict`)."""
        payload: Dict = {
            "name": self.name,
            "kind": self.kind,
            "n_samples": self.n_samples,
        }
        if self.kind == "numeric":
            payload["lo"] = self.lo
            payload["hi"] = self.hi
            payload["quantiles"] = (
                None if self.quantiles is None else list(self.quantiles)
            )
        else:
            payload["domain"] = sorted(self.domain)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AttributeFingerprint":
        """Inverse of :meth:`to_dict`."""
        kind = payload["kind"]
        if kind == "numeric":
            qs = payload.get("quantiles")
            return cls(
                name=payload["name"],
                kind="numeric",
                n_samples=int(payload.get("n_samples", 0)),
                lo=payload.get("lo"),
                hi=payload.get("hi"),
                quantiles=None if qs is None else tuple(float(q) for q in qs),
            )
        return cls(
            name=payload["name"],
            kind="categorical",
            n_samples=int(payload.get("n_samples", 0)),
            domain=frozenset(payload.get("domain", ())),
        )


def fingerprint_attributes(
    dataset, attrs: Optional[Sequence[str]] = None
) -> Dict[str, AttributeFingerprint]:
    """Fingerprint the named attributes of *dataset* (default: all).

    Attributes absent from the dataset are silently skipped, so callers
    can pass a model's attribute list directly.
    """
    if attrs is None:
        attrs = dataset.attributes
    out: Dict[str, AttributeFingerprint] = {}
    for attr in attrs:
        if attr not in dataset or attr in out:
            continue
        out[attr] = AttributeFingerprint.from_values(
            attr, dataset.column(attr), dataset.is_numeric(attr)
        )
    return out


# ----------------------------------------------------------------------
# Similarities
# ----------------------------------------------------------------------
def name_ngrams(name: str, n: int = 3) -> FrozenSet[str]:
    """Padded character n-grams of a normalized attribute name."""
    normalized = "".join(
        c if c.isalnum() else "." for c in name.lower()
    ).strip(".")
    padded = f"^{normalized}$"
    if len(padded) <= n:
        return frozenset([padded])
    return frozenset(padded[i : i + n] for i in range(len(padded) - n + 1))


def name_similarity(a: str, b: str) -> float:
    """Jaccard overlap of the names' character trigrams, in [0, 1]."""
    if a == b:
        return 1.0
    ga, gb = name_ngrams(a), name_ngrams(b)
    union = len(ga | gb)
    return len(ga & gb) / union if union else 0.0


def value_similarity(
    a: AttributeFingerprint, b: AttributeFingerprint
) -> float:
    """Distributional similarity of two fingerprints, in [0, 1].

    Numeric sketches compare by mean decile displacement relative to the
    larger span (identical columns score exactly 1); categorical domains
    by Jaccard overlap.  Kind mismatches score 0.
    """
    if a.kind != b.kind:
        return 0.0
    if a.kind == "categorical":
        union = len(a.domain | b.domain)
        return len(a.domain & b.domain) / union if union else 0.0
    if a.quantiles is None or b.quantiles is None:
        return 0.0
    qa = np.asarray(a.quantiles)
    qb = np.asarray(b.quantiles)
    span = max(a.hi - a.lo, b.hi - b.lo)  # type: ignore[operator]
    if span <= 0.0:
        # both (near-)constant: compare the constants' magnitude
        scale = max(abs(a.lo or 0.0), abs(b.lo or 0.0))
        if scale == 0.0:
            return 1.0
        return max(0.0, 1.0 - abs((a.lo or 0.0) - (b.lo or 0.0)) / scale)
    displacement = float(np.mean(np.abs(qa - qb))) / span
    return max(0.0, 1.0 - displacement)
