"""Schema reconciliation: match drifted telemetry to a model's vocabulary.

A causal model's effect predicates name attributes from the collector
schema the model was trained under.  At diagnosis time the test data may
use a different schema — renamed metrics, reordered columns, dropped
probes, junk additions.  :class:`SchemaReconciler` maps the model's
attributes onto the data's through a three-stage cascade:

1. **exact** — same name, compatible kind;
2. **alias** — an operator-maintained alias table (observed name →
   canonical model name), the changelog of a known collector upgrade;
3. **fingerprint** — highest combined name-n-gram / value-sketch
   similarity (:mod:`repro.schema.fingerprint`), assigned greedily
   one-to-one in descending score order, but only above a confidence
   ``threshold`` — a below-threshold attribute is reported **missing**
   rather than mis-mapped, because a wrong mapping poisons Equation 3
   while a missing one merely costs coverage.

The resulting :class:`ReconciliationReport` is explicit and auditable:
per-attribute match method and score, the unmatched data attributes, and
:meth:`ReconciliationReport.apply`, which renames matched data columns
into the model vocabulary so every downstream consumer (confidence,
ranking, predicate evaluation) works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import metrics
from repro.schema.aliases import AliasStore
from repro.schema.fingerprint import (
    AttributeFingerprint,
    fingerprint_attributes,
    name_similarity,
    value_similarity,
)

__all__ = [
    "AttributeMatch",
    "ReconciliationReport",
    "SchemaReconciler",
    "RankResult",
    "rank_with_reconciliation",
]

DEFAULT_THRESHOLD = 0.55
DEFAULT_NAME_WEIGHT = 0.6
DEFAULT_COVERAGE_FLOOR = 0.5
#: Fingerprint matches at or above this score are recorded into the
#: persistent alias table, so the next drift resolves at the alias stage.
DEFAULT_CONFIRM_THRESHOLD = 0.8

_ALIAS_HITS = metrics.REGISTRY.counter(
    "repro_schema_alias_hits_total",
    "Model attributes resolved by the alias table (no fingerprinting)",
)
_FINGERPRINT_MATCHES = metrics.REGISTRY.counter(
    "repro_schema_fingerprint_matches_total",
    "Model attributes resolved by fingerprint similarity",
)
_ALIASES_LEARNED = metrics.REGISTRY.counter(
    "repro_schema_aliases_learned_total",
    "Confirmed fingerprint matches recorded into the alias table",
)


@dataclass(frozen=True)
class AttributeMatch:
    """How one model attribute was resolved against the data."""

    model_attr: str
    #: the data attribute it maps to (``None`` when missing).
    dataset_attr: Optional[str]
    #: ``"exact"`` | ``"alias"`` | ``"fingerprint"`` | ``"missing"``.
    method: str
    #: match confidence in [0, 1] (1.0 for exact/alias, 0.0 for missing).
    score: float

    @property
    def matched(self) -> bool:
        return self.dataset_attr is not None


@dataclass
class ReconciliationReport:
    """Explicit outcome of one reconciliation pass."""

    #: per model attribute, in model order.
    matches: Dict[str, AttributeMatch]
    #: data attributes no model attribute claimed (junk, new metrics).
    unmatched_dataset: List[str] = field(default_factory=list)

    @property
    def missing(self) -> List[str]:
        """Model attributes with no trustworthy counterpart in the data."""
        return [a for a, m in self.matches.items() if not m.matched]

    @property
    def renamed(self) -> Dict[str, str]:
        """Non-identity mappings applied: data name → model name."""
        return {
            m.dataset_attr: m.model_attr
            for m in self.matches.values()
            if m.matched and m.dataset_attr != m.model_attr
        }

    def coverage(self, attrs: Sequence[str]) -> float:
        """Fraction of *attrs* that resolved to a data attribute."""
        if not attrs:
            return 1.0
        matched = sum(
            1
            for a in attrs
            if a in self.matches and self.matches[a].matched
        )
        return matched / len(attrs)

    def apply(self, dataset):
        """Rename matched data columns into the model vocabulary.

        Returns *dataset* itself when no rename is needed (the clean-path
        fast path — identity is preserved so labeled-space caches keyed
        by dataset id keep hitting).
        """
        renames = self.renamed
        if not renames:
            return dataset
        return dataset.rename_attributes(renames)

    def summary(self) -> Dict[str, int]:
        """Aggregate counts for logs and bench reports."""
        by_method: Dict[str, int] = {}
        for m in self.matches.values():
            by_method[m.method] = by_method.get(m.method, 0) + 1
        by_method["unmatched_dataset"] = len(self.unmatched_dataset)
        return by_method


class SchemaReconciler:
    """Match model attributes to data attributes across schema drift.

    Parameters
    ----------
    aliases:
        Observed-name → canonical-model-name table (a collector
        upgrade's changelog).  Alias matches rank just below exact ones
        and are exempt from the fingerprint threshold.
    threshold:
        Minimum combined similarity for a fingerprint match; below it an
        attribute is reported missing rather than mis-mapped.
    name_weight:
        Weight of name similarity in the combined score (value
        similarity gets ``1 - name_weight``).  When either side lacks a
        fingerprint, name similarity alone is used.
    alias_store:
        Optional persistent :class:`~repro.schema.aliases.AliasStore`.
        Its entries join the alias stage, and fingerprint matches whose
        score reaches ``confirm_threshold`` are recorded back into it
        (and saved), so repeated drifts resolve without fingerprinting.
    confirm_threshold:
        Minimum fingerprint score for a match to be recorded into
        ``alias_store``.
    """

    def __init__(
        self,
        aliases: Optional[Mapping[str, str]] = None,
        threshold: float = DEFAULT_THRESHOLD,
        name_weight: float = DEFAULT_NAME_WEIGHT,
        alias_store: Optional[AliasStore] = None,
        confirm_threshold: float = DEFAULT_CONFIRM_THRESHOLD,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        if not 0.0 <= name_weight <= 1.0:
            raise ValueError("name_weight must lie in [0, 1]")
        if not 0.0 <= confirm_threshold <= 1.0:
            raise ValueError("confirm_threshold must lie in [0, 1]")
        self.aliases = dict(aliases or {})
        self.threshold = float(threshold)
        self.name_weight = float(name_weight)
        self.alias_store = alias_store
        self.confirm_threshold = float(confirm_threshold)

    # ------------------------------------------------------------------
    def _score(
        self,
        model_attr: str,
        model_fp: Optional[AttributeFingerprint],
        data_attr: str,
        data_fp: AttributeFingerprint,
    ) -> float:
        """Combined similarity of a (model attr, data attr) pair."""
        if model_fp is not None and model_fp.kind != data_fp.kind:
            return 0.0
        names = name_similarity(model_attr, data_attr)
        if model_fp is None:
            return names
        values = value_similarity(model_fp, data_fp)
        return self.name_weight * names + (1.0 - self.name_weight) * values

    def _kind_compatible(
        self,
        model_fp: Optional[AttributeFingerprint],
        dataset,
        data_attr: str,
    ) -> bool:
        if model_fp is None:
            return True
        is_numeric = dataset.is_numeric(data_attr)
        return (model_fp.kind == "numeric") == is_numeric

    def reconcile(
        self,
        fingerprints: Mapping[str, Optional[AttributeFingerprint]],
        dataset,
    ) -> ReconciliationReport:
        """Resolve every model attribute against *dataset*.

        *fingerprints* maps each model attribute to its stored
        fingerprint (``None`` for legacy models, which then match by
        name only).
        """
        model_attrs = list(fingerprints)
        resolved: Dict[str, AttributeMatch] = {}
        claimed: set = set()

        # 1. exact name (kind-compatible)
        for attr in model_attrs:
            if attr in dataset and self._kind_compatible(
                fingerprints[attr], dataset, attr
            ):
                resolved[attr] = AttributeMatch(attr, attr, "exact", 1.0)
                claimed.add(attr)

        # 2. alias table (observed name → canonical model name); the
        # operator-maintained table wins over learned (alias-store) rows
        combined_aliases = dict(
            self.alias_store.aliases if self.alias_store is not None else {}
        )
        combined_aliases.update(self.aliases)
        if combined_aliases:
            for data_attr, canonical in combined_aliases.items():
                if (
                    canonical in model_attrs
                    and canonical not in resolved
                    and data_attr in dataset
                    and data_attr not in claimed
                    and self._kind_compatible(
                        fingerprints[canonical], dataset, data_attr
                    )
                ):
                    resolved[canonical] = AttributeMatch(
                        canonical, data_attr, "alias", 1.0
                    )
                    claimed.add(data_attr)
                    _ALIAS_HITS.inc()

        # 3. fingerprint similarity, greedy one-to-one above threshold
        open_model = [a for a in model_attrs if a not in resolved]
        open_data = [a for a in dataset.attributes if a not in claimed]
        if open_model and open_data:
            data_fps = fingerprint_attributes(dataset, open_data)
            candidates: List[Tuple[float, str, str]] = []
            for m in open_model:
                for d in open_data:
                    score = self._score(m, fingerprints[m], d, data_fps[d])
                    if score >= self.threshold:
                        candidates.append((score, m, d))
            # descending score; name ties broken lexicographically so the
            # assignment is deterministic regardless of input order
            candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
            learned = 0
            for score, m, d in candidates:
                if m in resolved or d in claimed:
                    continue
                resolved[m] = AttributeMatch(m, d, "fingerprint", score)
                claimed.add(d)
                _FINGERPRINT_MATCHES.inc()
                if (
                    self.alias_store is not None
                    and score >= self.confirm_threshold
                    and self.alias_store.record(d, m, score)
                ):
                    learned += 1
            if learned:
                _ALIASES_LEARNED.inc(learned)
                self.alias_store.save()

        matches = {
            attr: resolved.get(
                attr, AttributeMatch(attr, None, "missing", 0.0)
            )
            for attr in model_attrs
        }
        unmatched = [a for a in dataset.attributes if a not in claimed]
        return ReconciliationReport(
            matches=matches, unmatched_dataset=unmatched
        )


# ----------------------------------------------------------------------
# Reconciled ranking (shared by CausalModelStore.rank and the harness)
# ----------------------------------------------------------------------
@dataclass
class RankResult:
    """Outcome of ranking causal models through a reconciler."""

    #: ``(cause, confidence)`` — scored models by descending confidence,
    #: then abstaining models (each at the no-evidence score 0.0).
    scores: List[Tuple[str, float]]
    #: causes whose models abstained (coverage below the floor).
    abstained: List[str]
    #: the reconciliation the scores were computed under.
    report: ReconciliationReport


def collect_fingerprints(
    models,
) -> Dict[str, Optional[AttributeFingerprint]]:
    """Union of the models' attribute fingerprints (first non-None wins)."""
    fps: Dict[str, Optional[AttributeFingerprint]] = {}
    for model in models:
        for attr in model.attributes:
            stored = model.fingerprints.get(attr)
            if attr not in fps or (fps[attr] is None and stored is not None):
                fps[attr] = stored
    return fps


def rank_with_reconciliation(
    models,
    dataset,
    spec,
    reconciler: SchemaReconciler,
    n_partitions: int = 250,
    apply_filtering: bool = True,
    cache=None,
    coverage_floor: float = DEFAULT_COVERAGE_FLOOR,
) -> RankResult:
    """Rank *models* on *dataset* after reconciling its schema.

    One reconciliation pass covers every model (their attribute
    fingerprints are unioned), the matched data columns are renamed into
    the model vocabulary, and each model scores Equation 3 on the
    renamed data.  Because confidence averages over *all* of a model's
    predicates while only reconciled-and-present ones can contribute,
    the score carries an implicit coverage penalty — and a model whose
    coverage falls below ``coverage_floor`` abstains outright (scored at
    the no-evidence 0.0, listed in ``abstained``) instead of reporting a
    confidence computed from a sliver of its evidence.
    """
    models = list(models)
    report = reconciler.reconcile(collect_fingerprints(models), dataset)
    target = report.apply(dataset)
    scored: List[Tuple[str, float]] = []
    abstained: List[str] = []
    for model in models:
        if model.predicates and (
            report.coverage(model.attributes) < coverage_floor
        ):
            abstained.append(model.cause)
            continue
        scored.append(
            (
                model.cause,
                model.confidence(
                    target,
                    spec,
                    n_partitions,
                    apply_filtering,
                    cache=cache,
                ),
            )
        )
    scored.sort(key=lambda item: item[1], reverse=True)
    scored.extend((cause, 0.0) for cause in abstained)
    return RankResult(scores=scored, abstained=abstained, report=report)
