"""Streaming anomaly detection: the Section 7 pipeline as an online engine.

The batch :class:`~repro.core.anomaly.AnomalyDetector` recomputes the full
pipeline per call; for an always-on monitor fed one telemetry row per
second that is an O(attrs × n × w log w) bill every tick.  This package
keeps the pipeline's state resident instead:

``window``    :class:`RingBufferWindow` — fixed-capacity telemetry window
              with zero-copy column views and amortized-O(1) min/max
              normalization bounds;
``median``    :class:`SlidingMedian` / :class:`SlidingExtrema` — the
              order-statistic structures behind the incremental
              Equation 4;
``detector``  :class:`StreamingDetector` — per-tick detection with an
              exact mode (output identical to the batch detector on the
              same window) and an incremental re-cluster mode;
              :class:`StreamingDiagnoser` — hands newly-closed abnormal
              regions to the ``DBSherlock`` diagnosis path;
``supervisor`` :class:`StreamSupervisor` — crash recovery around the
              detector: periodic checkpoints, exponential-backoff
              restarts, replay-exact restore;
``golden``    frozen seed implementations (loop Equation 4, dense-matrix
              DBSCAN), the equivalence ground truth and benchmark
              baseline.
"""

from repro.stream.detector import (
    StreamingDetector,
    StreamingDiagnoser,
    StreamTick,
)
from repro.stream.median import SlidingExtrema, SlidingMedian
from repro.stream.supervisor import StreamSupervisor, SupervisorReport
from repro.stream.window import EvictedRow, RingBufferWindow

__all__ = [
    "EvictedRow",
    "RingBufferWindow",
    "SlidingExtrema",
    "SlidingMedian",
    "StreamSupervisor",
    "StreamTick",
    "StreamingDetector",
    "StreamingDiagnoser",
    "SupervisorReport",
]
