"""Online anomaly detection: the Section 7 pipeline at O(1)-ish per tick.

The batch :class:`~repro.core.anomaly.AnomalyDetector` recomputes
everything from scratch per call — Equation 4 costs O(n·w log w) per
attribute, across all ~190 telemetry attributes, every tick.
:class:`StreamingDetector` keeps the pipeline's state live instead:

* telemetry rows land in a :class:`~repro.stream.window.RingBufferWindow`;
* each attribute owns an :class:`_AttributeTracker` — a whole-buffer
  sliding median, a ``w``-sample sliding median producing the stream of
  window medians, and monotonic extrema over those medians — so the
  Equation 4 potential power updates in O(log n) per tick.  Powers are
  computed in *raw* value space and divided by the normalization span:
  normalization (Equation 2) is a monotone affine map, so
  ``|med(norm) − med_w(norm)| = |med(raw) − med_w(raw)| / span``;
* clustering + mask building runs through the *same*
  ``AnomalyDetector._cluster_and_mask`` code path as the batch detector
  (grid-indexed DBSCAN, cluster-fraction thresholding, temporal
  smoothing), so in the default ``mode="exact"`` the per-tick
  :class:`DetectionResult` is equal to ``AnomalyDetector.detect`` on the
  identical window — the equivalence suite in ``tests/test_stream.py``
  asserts mask, regions, selected attributes, and ε all match.

``mode="incremental"`` additionally skips re-clustering while the ring
buffer's membership is stable: a full re-cluster runs only when the
selected-attribute set changes, the normalization bounds of a selected
attribute drift enough to move ε, or more than ``recluster_fraction`` of
the buffer has turned over.  Between re-clusters, new points inherit the
abnormality of their nearest clustered neighbour within ε (noise when
none), which is approximate but bounded by the re-cluster cadence.

:class:`StreamingDiagnoser` closes the loop with the PR-1 diagnosis path:
when a flagged region can no longer be extended (the gap behind it
exceeds ``gap_fill_s``), it is handed to ``DBSherlock.explain`` — which
shares one :class:`~repro.perf.cache.LabeledSpaceCache` between predicate
generation and ``CausalModelStore.rank``.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.anomaly import (
    AnomalyDetector,
    DetectionResult,
    mask_to_regions,
)
from repro.core.separation import normalize_values
from repro.data.regions import Region, RegionSpec
from repro.obs import metrics
from repro.stream.median import SlidingExtrema, SlidingMedian
from repro.stream.window import RingBufferWindow

__all__ = [
    "StreamTick",
    "StreamingDetector",
    "StreamingDiagnoser",
    "cluster_window",
    "cluster_windows_batch",
    "close_regions",
    "close_regions_batch",
]

_TICK_SECONDS = metrics.REGISTRY.histogram(
    "repro_stream_tick_seconds",
    "Wall time of one StreamingDetector.tick (observe + detect + deltas)",
)
_RECLUSTERS = metrics.REGISTRY.counter(
    "repro_stream_reclusters_total", "Full DBSCAN re-clusters"
)
_DROPPED = metrics.REGISTRY.counter(
    "repro_stream_dropped_ticks_total",
    "Rows discarded for non-monotone timestamps",
)
_SANITIZED = metrics.REGISTRY.counter(
    "repro_stream_sanitized_values_total",
    "NaN / missing telemetry cells repaired on ingest",
)
_QUARANTINES = metrics.REGISTRY.counter(
    "repro_stream_quarantine_events_total",
    "Attributes newly quarantined as stuck-at",
)
_CLOSED_REGIONS = metrics.REGISTRY.counter(
    "repro_stream_closed_regions_total",
    "Abnormal regions closed and handed to diagnosis",
)


def cluster_window(
    batch: AnomalyDetector, window, selected: Sequence[str]
) -> DetectionResult:
    """Normalize *selected* columns of *window* and cluster them.

    The single post-selection entry point shared by
    :class:`StreamingDetector` and the fleet engine
    (:mod:`repro.fleet.engine`): *window* only needs ``column(attr)`` and
    ``timestamps``, so a :class:`~repro.stream.window.RingBufferWindow`
    and an arena view are interchangeable here — both paths run the same
    ``AnomalyDetector._cluster_and_mask`` on the same matrix, which is
    what makes their outputs bitwise-comparable.
    """
    matrix = np.column_stack(
        [normalize_values(window.column(a)) for a in selected]
    )
    return batch._cluster_and_mask(matrix, window.timestamps, list(selected))


def cluster_windows_batch(
    batch: AnomalyDetector,
    windows: Sequence[object],
    selections: Sequence[Sequence[str]],
) -> List[DetectionResult]:
    """:func:`cluster_window` for many fallout streams in numpy passes.

    The storm path: instead of normalizing, clustering, and smoothing
    each stream's window in its own Python iteration, streams are
    grouped by ``(n_rows, n_selected)`` shape (no padding — padding
    would change the floating-point accumulation trees and break
    bitwise equality), stacked into one ``(streams, rows, attrs)``
    tensor per group, and pushed through batched normalization,
    :func:`repro.cluster.dbscan.dbscan_labels_batch`, an offset-bincount
    abnormal-cluster test, and
    :func:`repro.core.anomaly.smooth_masks_batch`.  Cluster labels are
    partitioned per stream by construction (each lane has its own
    distance matrix and ε), so clusters never bleed across tenants.

    Element ``i`` of the returned list is bitwise-identical to
    ``cluster_window(batch, windows[i], selections[i])`` — the
    equivalence tests and the fleet bench mirrors assert it.  Streams
    the batch kernels cannot express exactly (NaN cells, non-monotone
    timestamps, empty windows) fall back to the serial function.
    """
    from repro.cluster.dbscan import NOISE, dbscan_labels_batch
    from repro.core.anomaly import mask_runs_batch, smooth_masks_batch

    count = len(windows)
    results: List[Optional[DetectionResult]] = [None] * count
    raws: List[Optional[np.ndarray]] = [None] * count
    stamps: List[Optional[np.ndarray]] = [None] * count
    groups: Dict[Tuple[int, int], List[int]] = {}
    for i in range(count):
        window = windows[i]
        selected = list(selections[i])
        ts = np.asarray(window.timestamps, dtype=np.float64)
        n = ts.shape[0]
        if n == 0 or not selected:
            results[i] = cluster_window(batch, window, selected)
            continue
        raw = np.empty((n, len(selected)))
        for j, attr in enumerate(selected):
            raw[:, j] = window.column(attr)
        if bool(np.isnan(raw).any()) or not bool(np.all(np.diff(ts) > 0)):
            results[i] = cluster_window(batch, window, selected)
            continue
        raws[i] = raw
        stamps[i] = ts
        groups.setdefault((n, len(selected)), []).append(i)

    for (n, _k), members in groups.items():
        raw3 = np.stack([raws[i] for i in members])  # (G, n, k)
        ts2 = np.stack([stamps[i] for i in members])  # (G, n)
        # per-lane min/max scaling: the exact (v - lo) / span expression
        # of normalize_values; constant lanes (span <= 0) become zeros
        mins = raw3.min(axis=1)
        maxs = raw3.max(axis=1)
        spans = maxs - mins
        degenerate = spans <= 0
        safe = np.where(degenerate, 1.0, spans)
        norm = (raw3 - mins[:, None, :]) / safe[:, None, :]
        if bool(degenerate.any()):
            norm[np.broadcast_to(degenerate[:, None, :], norm.shape)] = 0.0

        labels, eps = dbscan_labels_batch(norm, batch.min_pts)
        n_lanes = len(members)
        # cluster sizes per lane via one offset bincount (stride n + 1
        # because a lane can have at most n clusters, ids 0..n-1)
        clustered = labels != NOISE
        lane_idx, row_idx = np.nonzero(clustered)
        counts = np.bincount(
            lane_idx * (n + 1) + labels[lane_idx, row_idx],
            minlength=n_lanes * (n + 1),
        ).reshape(n_lanes, n + 1)
        threshold = batch.cluster_fraction * n
        size_of = np.take_along_axis(counts, np.maximum(labels, 0), axis=1)
        mask = clustered & (size_of < threshold)
        if batch.include_noise:
            mask |= labels == NOISE

        smoothed = smooth_masks_batch(
            mask, ts2, batch.gap_fill_s, batch.min_region_s
        )
        regions_per: List[List[Region]] = [[] for _ in members]
        lanes, starts, ends = mask_runs_batch(smoothed)
        for g, s, e in zip(lanes.tolist(), starts.tolist(), ends.tolist()):
            regions_per[g].append(
                Region(float(ts2[g, s]), float(ts2[g, e]))
            )
        for g, i in enumerate(members):
            results[i] = DetectionResult(
                mask=smoothed[g].copy(),
                regions=regions_per[g],
                selected_attributes=list(selections[i]),
                eps=float(eps[g]),
            )
    return results  # type: ignore[return-value]


def close_regions(
    regions: Sequence[Region],
    timestamps: np.ndarray,
    gap_fill_s: float,
    emitted_ends: Set[float],
) -> Tuple[List[Region], Set[float]]:
    """Split off regions that can no longer be extended by future ticks.

    A flagged region is *closed* once the unflagged gap between its end
    and the window tail exceeds *gap_fill_s* — no future row can bridge
    into it.  Each closed region is emitted exactly once, keyed by its
    end timestamp (ends never shift; starts can, when eviction truncates
    a region).  Returns ``(closed, emitted_ends)`` where the second
    element is the pruned dedup set the caller should retain (keys whose
    timestamps have left the buffer are dropped).
    """
    if len(timestamps) == 0:
        return [], emitted_ends
    tail = float(timestamps[-1])
    oldest = float(timestamps[0])
    emitted_ends = {e for e in emitted_ends if e >= oldest}
    closed: List[Region] = []
    for region in regions:
        if tail - region.end > gap_fill_s and (
            region.end not in emitted_ends
        ):
            emitted_ends.add(region.end)
            closed.append(region)
    return closed, emitted_ends


def close_regions_batch(
    region_lists: Sequence[Sequence[Region]],
    timestamp_arrays: Sequence[np.ndarray],
    gap_fill_s: float,
    emitted_sets: Sequence[Set[float]],
) -> Tuple[List[List[Region]], List[Set[float]]]:
    """:func:`close_regions` across a fallout set in one call.

    Streams with neither candidate regions nor retained dedup keys are
    recognized up front (in a storm most fallout streams close nothing
    on most ticks) — for them the serial function would only rebuild an
    empty set, so the short-circuit returns identical state.  The rest
    run through :func:`close_regions` unchanged.
    """
    closed_lists: List[List[Region]] = []
    emitted_out: List[Set[float]] = []
    for regions, timestamps, emitted in zip(
        region_lists, timestamp_arrays, emitted_sets
    ):
        if not regions and not emitted:
            closed_lists.append([])
            emitted_out.append(emitted)
            continue
        closed, emitted = close_regions(
            regions, timestamps, gap_fill_s, emitted
        )
        closed_lists.append(closed)
        emitted_out.append(emitted)
    return closed_lists, emitted_out


class _AttributeTracker:
    """Incremental Equation 4 state for one numeric attribute."""

    __slots__ = ("window", "_overall", "_win_med", "_recent", "_med_extrema")

    def __init__(self, window: int) -> None:
        self.window = int(window)
        self._overall = SlidingMedian()  # whole-buffer median
        self._win_med = SlidingMedian()  # median of the trailing w samples
        self._recent: Deque[float] = deque()  # the trailing w raw samples
        self._med_extrema = SlidingExtrema()  # min/max of live window medians

    def push(self, value: float, seq: int, oldest_seq: int) -> None:
        """Ingest the sample with sequence number *seq*."""
        self._overall.add(value)
        self._recent.append(value)
        self._win_med.add(value)
        if len(self._recent) > self.window:
            self._win_med.remove(self._recent.popleft())
        if len(self._recent) == self.window:
            # the window ending at *seq* is complete; key its median by
            # the end sequence so expiry follows the buffer's oldest row
            self._med_extrema.push(seq, self._win_med.median())
        # a window median stays valid while its *start* row is retained:
        # end seq ≥ oldest + w − 1
        self._med_extrema.expire(oldest_seq + self.window - 1)

    def evict(self, value: float) -> None:
        """The buffer dropped *value* (its oldest row)."""
        self._overall.remove(value)

    def potential_power(self, lo: float, hi: float, n: int) -> float:
        """Equation 4 over the current buffer, in normalized units.

        Zero while the buffer holds at most one full window (the single
        window median equals the overall median) or when the attribute is
        constant (span 0 normalizes to all-zeros), matching the batch
        :func:`~repro.core.anomaly.potential_power` degenerate cases.
        """
        if n <= self.window or len(self._med_extrema) == 0:
            return 0.0
        span = hi - lo
        if span <= 0:
            return 0.0
        overall = self._overall.median()
        deviation = max(
            abs(overall - self._med_extrema.min()),
            abs(overall - self._med_extrema.max()),
        )
        return deviation / span


@dataclass
class StreamTick:
    """What the streaming detector emits for one telemetry tick."""

    time: float
    result: DetectionResult
    #: abnormal regions that can no longer grow (gap behind them exceeds
    #: the gap-fill horizon) — ready for diagnosis; each emitted once.
    closed_regions: List[Region] = field(default_factory=list)
    #: True when this tick ran a full DBSCAN re-cluster.
    reclustered: bool = False


class _ClusterState:
    """Snapshot of the last full re-cluster (incremental mode)."""

    __slots__ = (
        "selected",
        "eps",
        "bounds",
        "points",
        "raw_flags",
        "appended_at",
        "reclustered_at",
    )

    def __init__(self, selected, eps, bounds, points, raw_flags, appended_at):
        self.selected: Tuple[str, ...] = selected
        self.eps: float = eps
        self.bounds: Dict[str, Tuple[float, float]] = bounds
        self.points: np.ndarray = points  # normalized rows at snapshot time
        self.raw_flags: np.ndarray = raw_flags  # pre-smoothing abnormal flags
        self.appended_at: int = appended_at  # window.appended at last sync
        self.reclustered_at: int = appended_at  # ... at last full re-cluster


class StreamingDetector:
    """Amortized-O(1)-per-tick automatic anomaly detection.

    Parameters mirror :class:`~repro.core.anomaly.AnomalyDetector`; the
    extras control the streaming machinery.

    Parameters
    ----------
    capacity:
        Ring-buffer length — the detection window, in rows/seconds.
    attributes:
        Optional subset of numeric attributes to consider for selection
        (all numeric attributes are still buffered for diagnosis).
    mode:
        ``"exact"`` re-clusters every tick (output identical to the batch
        detector on the same window); ``"incremental"`` re-clusters only
        on membership/ε drift and approximates in between.
    recluster_fraction:
        Incremental mode: force a re-cluster once this fraction of the
        buffer has turned over since the last one.
    bounds_drift:
        Incremental mode: force a re-cluster when a selected attribute's
        min/max moved by more than this fraction of its span (the
        normalized geometry — and hence ε — has shifted).
    quarantine_after:
        Degraded telemetry: an attribute whose value has been *exactly*
        identical for this many consecutive ticks (a stuck-at counter) is
        quarantined — excluded from attribute selection until its value
        moves again.  ``None`` (default) disables quarantine.
    quarantine_rel_epsilon:
        Variance-based quarantine: instead of requiring *exact* equality,
        quarantine an attribute whose rolling ``quarantine_after``-tick
        standard deviation falls to or below this fraction of the
        window's mean magnitude — catching stuck-at sensors that jitter
        in the low bits.  Requires ``quarantine_after`` (the window
        length).  ``None`` (default) keeps the exact-equality rule, so
        existing configurations behave identically.
    """

    CHECKPOINT_VERSION = 1

    def __init__(
        self,
        capacity: int = 120,
        window: int = 20,
        pp_threshold: float = 0.3,
        min_pts: int = 3,
        cluster_fraction: float = 0.2,
        include_noise: bool = True,
        min_region_s: float = 5.0,
        gap_fill_s: float = 3.0,
        attributes: Optional[Sequence[str]] = None,
        mode: str = "exact",
        recluster_fraction: float = 0.05,
        bounds_drift: float = 0.02,
        quarantine_after: Optional[int] = None,
        quarantine_rel_epsilon: Optional[float] = None,
    ) -> None:
        if mode not in ("exact", "incremental"):
            raise ValueError("mode must be 'exact' or 'incremental'")
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.capacity = int(capacity)
        self.mode = mode
        self.recluster_fraction = float(recluster_fraction)
        self.bounds_drift = float(bounds_drift)
        self._attr_filter = list(attributes) if attributes is not None else None
        # the batch twin: supplies _cluster_and_mask / _smooth_mask so the
        # post-selection pipeline is literally the same code
        self.batch = AnomalyDetector(
            window=window,
            pp_threshold=pp_threshold,
            min_pts=min_pts,
            cluster_fraction=cluster_fraction,
            include_noise=include_noise,
            min_region_s=min_region_s,
            gap_fill_s=gap_fill_s,
        )
        self.quarantine_after = (
            int(quarantine_after) if quarantine_after is not None else None
        )
        if self.quarantine_after is not None and self.quarantine_after < 2:
            raise ValueError("quarantine_after must be at least 2")
        self.quarantine_rel_epsilon = (
            float(quarantine_rel_epsilon)
            if quarantine_rel_epsilon is not None
            else None
        )
        if self.quarantine_rel_epsilon is not None:
            if self.quarantine_rel_epsilon < 0:
                raise ValueError("quarantine_rel_epsilon must be >= 0")
            if self.quarantine_after is None:
                raise ValueError(
                    "quarantine_rel_epsilon requires quarantine_after "
                    "(the rolling-window length)"
                )
        self._window: Optional[RingBufferWindow] = None
        self._trackers: Dict[str, _AttributeTracker] = {}
        self._tracked: List[str] = []
        self._cluster_state: Optional[_ClusterState] = None
        self._emitted_ends: Set[float] = set()
        self.recluster_count = 0
        self.tick_count = 0
        # degraded-telemetry bookkeeping
        self.dropped_ticks = 0  # non-monotone timestamps discarded
        self.sanitized_values = 0  # NaN / missing cells repaired
        self.quarantined: Set[str] = set()  # stuck-at attributes
        self._last_time: Optional[float] = None
        self._last_seen: Dict[str, float] = {}  # last valid value per attr
        self._last_cat: Dict[str, str] = {}  # last seen category per attr
        self._stuck_runs: Dict[str, int] = {}  # consecutive-identical runs
        self._prev_value: Dict[str, float] = {}  # previous tick's value
        self._recent_values: Dict[str, Deque[float]] = {}  # variance windows

    # ------------------------------------------------------------------
    @property
    def window(self) -> Optional[RingBufferWindow]:
        """The live telemetry ring buffer (None before the first row)."""
        return self._window

    def _ensure_window(
        self,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]],
    ) -> RingBufferWindow:
        if self._window is None:
            self._window = RingBufferWindow(
                self.capacity,
                numeric=list(numeric_row),
                categorical=list(categorical_row or {}),
            )
            self._tracked = (
                [a for a in self._attr_filter if a in numeric_row]
                if self._attr_filter is not None
                else list(numeric_row)
            )
            self._trackers = {
                attr: _AttributeTracker(self.batch.window)
                for attr in self._tracked
            }
        return self._window

    def observe(
        self,
        time: float,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]] = None,
    ) -> bool:
        """Ingest one telemetry row (no detection).

        Degraded telemetry is repaired on the way in: rows whose
        timestamp does not advance are dropped (``dropped_ticks``), NaN
        and missing cells are filled with the attribute's last valid
        value (``sanitized_values``), and exactly-constant runs feed the
        stuck-at quarantine.  Returns ``True`` when the row was ingested.
        """
        time = float(time)
        if self._last_time is not None and time <= self._last_time:
            self.dropped_ticks += 1
            _DROPPED.inc()
            return False
        numeric_row, categorical_row = self._sanitize_row(
            numeric_row, categorical_row
        )
        self._last_time = time
        self._ingest(time, numeric_row, categorical_row)
        self._update_quarantine(numeric_row)
        return True

    def _sanitize_row(
        self,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]],
    ) -> Tuple[Dict[str, float], Dict[str, str]]:
        """Repair NaN / missing cells against the window's schema."""
        if self._window is not None:
            numeric_attrs = self._window.numeric_attributes
            categorical_attrs = self._window.categorical_attributes
        else:
            numeric_attrs = list(numeric_row)
            categorical_attrs = list(categorical_row or {})
        clean_numeric: Dict[str, float] = {}
        for attr in numeric_attrs:
            value = numeric_row.get(attr)
            if value is None or np.isnan(value):
                clean_numeric[attr] = self._last_seen.get(attr, 0.0)
                self.sanitized_values += 1
                _SANITIZED.inc()
            else:
                value = float(value)
                clean_numeric[attr] = value
                self._last_seen[attr] = value
        raw_cat = categorical_row or {}
        clean_cat: Dict[str, str] = {}
        for attr in categorical_attrs:
            if attr in raw_cat:
                clean_cat[attr] = raw_cat[attr]
                self._last_cat[attr] = raw_cat[attr]
            else:
                clean_cat[attr] = self._last_cat.get(attr, "")
                self.sanitized_values += 1
                _SANITIZED.inc()
        return clean_numeric, clean_cat

    def _quarantine(self, attr: str) -> None:
        if attr not in self.quarantined:
            self.quarantined.add(attr)
            _QUARANTINES.inc()

    def _update_quarantine(self, numeric_row: Mapping[str, float]) -> None:
        if self.quarantine_after is None:
            return
        if self.quarantine_rel_epsilon is not None:
            self._update_variance_quarantine(numeric_row)
            return
        for attr in self._tracked:
            value = numeric_row[attr]
            if self._prev_value.get(attr) == value:
                run = self._stuck_runs.get(attr, 1) + 1
                self._stuck_runs[attr] = run
                if run >= self.quarantine_after:
                    self._quarantine(attr)
            else:
                self._stuck_runs[attr] = 1
                self.quarantined.discard(attr)
            self._prev_value[attr] = value

    def _update_variance_quarantine(
        self, numeric_row: Mapping[str, float]
    ) -> None:
        """Quarantine attributes whose rolling window is (near-)flat.

        An exactly-stuck counter has zero variance, but a dying sensor
        often jitters in the low bits; the relative-epsilon floor treats
        ``std <= rel_epsilon * |mean|`` as stuck too.  Release follows
        the same statistic, so a recovered sensor rejoins selection as
        soon as its window shows real movement.
        """
        assert self.quarantine_after is not None
        for attr in self._tracked:
            buf = self._recent_values.get(attr)
            if buf is None:
                buf = deque(maxlen=self.quarantine_after)
                self._recent_values[attr] = buf
            buf.append(float(numeric_row[attr]))
            if len(buf) < self.quarantine_after:
                continue
            arr = np.asarray(buf, dtype=np.float64)
            scale = max(abs(float(arr.mean())), 1e-12)
            if float(arr.std()) <= self.quarantine_rel_epsilon * scale:
                self._quarantine(attr)
            else:
                self.quarantined.discard(attr)

    def _ingest(
        self,
        time: float,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]],
    ) -> None:
        """Append a sanitized row to the window and trackers."""
        window = self._ensure_window(numeric_row, categorical_row)
        evicted = window.append(time, numeric_row, categorical_row)
        if evicted is not None:
            for attr in self._tracked:
                self._trackers[attr].evict(evicted.numeric[attr])
        oldest = window.oldest_seq
        seq = window.appended - 1
        for attr in self._tracked:
            self._trackers[attr].push(
                float(numeric_row[attr]), seq, oldest
            )

    # ------------------------------------------------------------------
    def _select(self) -> List[str]:
        """Attributes whose incremental potential power clears PPt."""
        assert self._window is not None
        n = self._window.n_rows
        selected = []
        for attr in self._tracked:
            if attr in self.quarantined:
                continue
            lo, hi = self._window.bounds(attr)
            power = self._trackers[attr].potential_power(lo, hi, n)
            if power > self.batch.pp_threshold:
                selected.append(attr)
        return selected

    def _empty_result(self) -> DetectionResult:
        n = self._window.n_rows if self._window is not None else 0
        return DetectionResult(
            mask=np.zeros(n, dtype=bool),
            regions=[],
            selected_attributes=[],
            eps=0.0,
        )

    def detect(self) -> DetectionResult:
        """Run detection on the current window contents."""
        self.tick_count += 1
        if self._window is None or self._window.n_rows == 0:
            return self._empty_result()
        selected = self._select()
        if not selected:
            self._cluster_state = None
            return self._empty_result()
        if self.mode == "exact":
            return self._full_cluster(selected)
        return self._incremental_cluster(selected)

    def tick(
        self,
        time: float,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]] = None,
    ) -> StreamTick:
        """Ingest one row, detect, and emit deltas."""
        t0 = _time.perf_counter()
        self.observe(time, numeric_row, categorical_row)
        before = self.recluster_count
        result = self.detect()
        closed = self._closed_regions(result)
        _TICK_SECONDS.observe(_time.perf_counter() - t0)
        if closed:
            _CLOSED_REGIONS.inc(len(closed))
        return StreamTick(
            time=float(time),
            result=result,
            closed_regions=closed,
            reclustered=self.recluster_count > before,
        )

    # ------------------------------------------------------------------
    def _full_cluster(self, selected: List[str]) -> DetectionResult:
        assert self._window is not None
        window = self._window
        result = cluster_window(self.batch, window, selected)
        self.recluster_count += 1
        _RECLUSTERS.inc()
        if self.mode == "incremental":
            raw = self._raw_flags(result)
            points = np.column_stack(
                [normalize_values(window.column(a)) for a in selected]
            )
            self._cluster_state = _ClusterState(
                selected=tuple(selected),
                eps=result.eps,
                bounds={a: window.bounds(a) for a in selected},
                points=points,
                raw_flags=raw,
                appended_at=window.appended,
            )
        return result

    def _raw_flags(self, result: DetectionResult) -> np.ndarray:
        """Recover pre-smoothing abnormality flags from a fresh result.

        The smoothed mask is what the result carries; for the incremental
        carry-forward we re-derive per-point flags from the smoothed mask
        itself — smoothing is idempotent, so re-smoothing these flags on a
        slid window reproduces the batch behaviour up to boundary effects.
        """
        return result.mask.copy()

    def _incremental_cluster(self, selected: List[str]) -> DetectionResult:
        assert self._window is not None
        window = self._window
        state = self._cluster_state
        if state is None or tuple(selected) != state.selected:
            return self._full_cluster(selected)
        since_recluster = window.appended - state.reclustered_at
        if since_recluster >= max(
            1, int(self.recluster_fraction * self.capacity)
        ):
            return self._full_cluster(selected)
        turned_over = window.appended - state.appended_at
        for attr in selected:
            lo0, hi0 = state.bounds[attr]
            span0 = max(hi0 - lo0, 1e-12)
            lo, hi = window.bounds(attr)
            if (
                abs(lo - lo0) > self.bounds_drift * span0
                or abs(hi - hi0) > self.bounds_drift * span0
            ):
                return self._full_cluster(selected)

        # carry the previous clustering forward: drop evicted rows, then
        # flag each new row by its nearest clustered neighbour within ε
        n = window.n_rows
        evicted = max(state.raw_flags.shape[0] + turned_over - n, 0)
        flags = state.raw_flags[evicted:]
        points = state.points[evicted:] if evicted else state.points
        new_rows = n - flags.shape[0]
        if new_rows > 0:
            lows = np.asarray([state.bounds[a][0] for a in selected])
            spans = np.asarray(
                [max(state.bounds[a][1] - state.bounds[a][0], 1e-12)
                 for a in selected]
            )
            fresh = np.column_stack(
                [window.column(a)[-new_rows:] for a in selected]
            )
            fresh = (fresh - lows[None, :]) / spans[None, :]
            new_flags = np.empty(new_rows, dtype=bool)
            for row in range(new_rows):
                d = np.sqrt(
                    np.maximum(
                        np.sum((points - fresh[row]) ** 2, axis=1), 0.0
                    )
                )
                j = int(np.argmin(d)) if d.size else -1
                if j < 0 or d[j] > state.eps:
                    # density outlier: noise
                    new_flags[row] = self.batch.include_noise
                else:
                    new_flags[row] = bool(flags[j]) if j < flags.shape[0] else False
                points = np.vstack([points, fresh[row : row + 1]])
                flags = np.append(flags, new_flags[row])
            state.points = points
            state.raw_flags = flags
            state.appended_at = window.appended
        mask = self.batch._smooth_mask(flags.copy(), window.timestamps)
        return DetectionResult(
            mask=mask,
            regions=mask_to_regions(window.timestamps, mask),
            selected_attributes=list(selected),
            eps=state.eps,
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def _params(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "window": self.batch.window,
            "pp_threshold": self.batch.pp_threshold,
            "min_pts": self.batch.min_pts,
            "cluster_fraction": self.batch.cluster_fraction,
            "include_noise": self.batch.include_noise,
            "min_region_s": self.batch.min_region_s,
            "gap_fill_s": self.batch.gap_fill_s,
            "attributes": self._attr_filter,
            "mode": self.mode,
            "recluster_fraction": self.recluster_fraction,
            "bounds_drift": self.bounds_drift,
            "quarantine_after": self.quarantine_after,
            "quarantine_rel_epsilon": self.quarantine_rel_epsilon,
        }

    def checkpoint(self) -> Dict[str, object]:
        """Serialize the full detector state as a JSON-able dict.

        :meth:`from_checkpoint` rebuilds a detector whose subsequent
        output is bit-identical to the uninterrupted one: the retained
        window rows are stored with their original sequence numbers and
        replayed through fresh trackers on restore — every live order
        statistic (sliding medians, extrema deques) depends only on the
        retained rows, so replay reconstructs it exactly.
        """
        state: Dict[str, object] = {
            "version": self.CHECKPOINT_VERSION,
            "params": self._params(),
            "tick_count": self.tick_count,
            "recluster_count": self.recluster_count,
            "dropped_ticks": self.dropped_ticks,
            "sanitized_values": self.sanitized_values,
            "quarantined": sorted(self.quarantined),
            "stuck_runs": dict(self._stuck_runs),
            "recent_values": {
                a: [float(v) for v in buf]
                for a, buf in self._recent_values.items()
            },
            "prev_value": dict(self._prev_value),
            "last_seen": dict(self._last_seen),
            "last_cat": dict(self._last_cat),
            "last_time": self._last_time,
            "emitted_ends": sorted(self._emitted_ends),
            "window": None,
            "cluster_state": None,
        }
        if self._window is not None:
            w = self._window
            state["window"] = {
                "appended": int(w.appended),
                "numeric_attrs": w.numeric_attributes,
                "categorical_attrs": w.categorical_attributes,
                "tracked": list(self._tracked),
                "timestamps": [float(t) for t in w.timestamps],
                "numeric": {
                    a: [float(v) for v in w.column(a)]
                    for a in w.numeric_attributes
                },
                "categorical": {
                    a: [str(v) for v in w.column(a)]
                    for a in w.categorical_attributes
                },
            }
        cs = self._cluster_state
        if cs is not None:
            state["cluster_state"] = {
                "selected": list(cs.selected),
                "eps": float(cs.eps),
                "bounds": {
                    a: [float(lo), float(hi)]
                    for a, (lo, hi) in cs.bounds.items()
                },
                "points": [[float(x) for x in row] for row in cs.points],
                "raw_flags": [bool(f) for f in cs.raw_flags],
                "appended_at": int(cs.appended_at),
                "reclustered_at": int(cs.reclustered_at),
            }
        return state

    @classmethod
    def from_checkpoint(cls, state: Mapping[str, object]) -> "StreamingDetector":
        """Rebuild a detector from a :meth:`checkpoint` dict."""
        version = state.get("version")
        if version != cls.CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(expected {cls.CHECKPOINT_VERSION})"
            )
        params = dict(state["params"])  # type: ignore[arg-type]
        detector = cls(**params)
        win = state.get("window")
        if win is not None:
            n_rows = len(win["timestamps"])
            detector._window = RingBufferWindow(
                detector.capacity,
                numeric=win["numeric_attrs"],
                categorical=win["categorical_attrs"],
                start_seq=int(win["appended"]) - n_rows,
            )
            detector._tracked = list(win["tracked"])
            detector._trackers = {
                attr: _AttributeTracker(detector.batch.window)
                for attr in detector._tracked
            }
            numeric_attrs = list(win["numeric_attrs"])
            categorical_attrs = list(win["categorical_attrs"])
            for i in range(n_rows):
                detector._ingest(
                    float(win["timestamps"][i]),
                    {a: float(win["numeric"][a][i]) for a in numeric_attrs},
                    {a: win["categorical"][a][i] for a in categorical_attrs},
                )
        detector.tick_count = int(state["tick_count"])
        detector.recluster_count = int(state["recluster_count"])
        detector.dropped_ticks = int(state["dropped_ticks"])
        detector.sanitized_values = int(state["sanitized_values"])
        detector.quarantined = set(state["quarantined"])
        detector._stuck_runs = {
            a: int(v) for a, v in dict(state["stuck_runs"]).items()
        }
        if detector.quarantine_after is not None:
            detector._recent_values = {
                a: deque(
                    (float(v) for v in values),
                    maxlen=detector.quarantine_after,
                )
                for a, values in dict(
                    state.get("recent_values", {})
                ).items()
            }
        detector._prev_value = {
            a: float(v) for a, v in dict(state["prev_value"]).items()
        }
        detector._last_seen = {
            a: float(v) for a, v in dict(state["last_seen"]).items()
        }
        detector._last_cat = {
            a: str(v) for a, v in dict(state["last_cat"]).items()
        }
        last_time = state.get("last_time")
        detector._last_time = None if last_time is None else float(last_time)
        detector._emitted_ends = {float(e) for e in state["emitted_ends"]}
        cs = state.get("cluster_state")
        if cs is not None:
            selected = tuple(cs["selected"])
            flags = np.asarray(cs["raw_flags"], dtype=bool)
            points = np.asarray(cs["points"], dtype=np.float64)
            if points.size == 0:
                points = np.zeros((0, len(selected)), dtype=np.float64)
            cluster_state = _ClusterState(
                selected=selected,
                eps=float(cs["eps"]),
                bounds={
                    a: (float(b[0]), float(b[1]))
                    for a, b in dict(cs["bounds"]).items()
                },
                points=points,
                raw_flags=flags,
                appended_at=int(cs["appended_at"]),
            )
            cluster_state.reclustered_at = int(cs["reclustered_at"])
            detector._cluster_state = cluster_state
        return detector

    # ------------------------------------------------------------------
    def _closed_regions(self, result: DetectionResult) -> List[Region]:
        """Regions that can no longer be extended (see :func:`close_regions`)."""
        if self._window is None or self._window.n_rows == 0:
            return []
        closed, self._emitted_ends = close_regions(
            result.regions,
            self._window.timestamps,
            self.batch.gap_fill_s,
            self._emitted_ends,
        )
        return closed


class StreamingDiagnoser:
    """Feed closed abnormal regions into the DBSherlock diagnosis path.

    Wraps a :class:`StreamingDetector` and a
    :class:`~repro.core.explain.DBSherlock` facade; every region the
    detector closes is explained (predicates + ranked known causes) on
    the current window snapshot.  The facade's shared
    :class:`~repro.perf.cache.LabeledSpaceCache` makes consecutive
    diagnoses on overlapping windows cheap.
    """

    def __init__(self, sherlock, detector: Optional[StreamingDetector] = None):
        self.sherlock = sherlock
        self.detector = detector or StreamingDetector()
        #: ``(region, explanation)`` pairs, most recent last.
        self.diagnoses: List[Tuple[Region, object]] = []

    def tick(
        self,
        time: float,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]] = None,
    ) -> StreamTick:
        """Ingest one row; diagnose any regions that closed this tick."""
        update = self.detector.tick(time, numeric_row, categorical_row)
        for region in update.closed_regions:
            dataset = self.detector.window.to_dataset(name="stream-window")
            spec = RegionSpec(abnormal=[region], normal=None)
            explanation = self.sherlock.explain(dataset, spec)
            self.diagnoses.append((region, explanation))
        return update
