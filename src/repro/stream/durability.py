"""Per-tenant durability manager: classify, retry, degrade, re-promote.

The WAL and checkpoint paths can now *fail* (see :mod:`repro.faults.fs`),
so something has to decide what a failure means.  This module is that
policy layer, sitting between the scheduler's persistence calls and a
tenant's :class:`~repro.stream.wal.TickWAL` / ``CheckpointStore``:

* :func:`classify_storage_error` sorts an ``OSError`` into the taxonomy
  from docs/ROBUSTNESS.md — ``"full_disk"`` (ENOSPC/EDQUOT: retrying
  immediately is pointless), ``"transient"`` (EIO/EAGAIN/EINTR/
  ETIMEDOUT/EBUSY: worth bounded retries), or ``"fatal"`` (everything
  else: fail fast).
* :class:`TenantDurability` wraps one tenant's WAL + checkpoint store.
  Transient errors are retried with bounded exponential backoff; when
  retries exhaust (or the disk is full, or the error is fatal) the
  tenant drops into **degraded in-memory persistence mode**: appends are
  acknowledged but buffered in a bounded in-memory deque instead of the
  WAL — explicitly *volatile*, surfaced through ``HealthTracker``
  transitions, ``repro_storage_*`` metrics, and the durability column in
  ``fleet status``.  Every ``probe_every`` appends (and before any
  checkpoint attempt) the manager probes the disk by draining the
  buffer back through the WAL; a full drain re-promotes the tenant to
  durable mode automatically.

Buffered ticks are popped only once they are known to be in the log, a
partially written line from a failed append is skipped by WAL replay's
CRC check, and an append whose write landed but whose batch fsync
failed is retried as a *flush* rather than a second append — so the
retry/degrade/probe/re-promote cycle can neither lose an acknowledged
tick silently nor write one twice.
"""

from __future__ import annotations

import errno
import time as _time
from collections import deque
from typing import Callable, Deque, Dict, Mapping, Optional, Tuple

from repro.faults import fs as _fs
from repro.obs import metrics
from repro.stream.wal import CheckpointStore, TickWAL

__all__ = [
    "FULL_DISK_ERRNOS",
    "TRANSIENT_ERRNOS",
    "TenantDurability",
    "classify_storage_error",
]

#: the disk itself is out of space — retrying immediately is pointless.
FULL_DISK_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT})

#: worth retrying with bounded backoff.
TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.EAGAIN, errno.EINTR, errno.ETIMEDOUT, errno.EBUSY}
)


def classify_storage_error(exc: OSError) -> str:
    """``"full_disk"``, ``"transient"``, or ``"fatal"`` for *exc*."""
    code = getattr(exc, "errno", None)
    if code in FULL_DISK_ERRNOS:
        return "full_disk"
    if code in TRANSIENT_ERRNOS:
        return "transient"
    return "fatal"


_DEGRADED_TRANSITIONS = metrics.REGISTRY.counter(
    "repro_storage_degraded_transitions_total",
    "Tenants dropped into degraded in-memory persistence mode",
)
_REPROMOTIONS = metrics.REGISTRY.counter(
    "repro_storage_repromotions_total",
    "Tenants re-promoted from degraded to durable persistence",
)
_RETRIES = metrics.REGISTRY.counter(
    "repro_storage_retries_total",
    "Transient storage errors absorbed by bounded-backoff retries",
)
_PROBES = metrics.REGISTRY.counter(
    "repro_storage_probes_total",
    "Disk-heal probes attempted by degraded tenants",
)
_VOLATILE_TICKS = metrics.REGISTRY.counter(
    "repro_storage_volatile_ticks_total",
    "Ticks acknowledged into the volatile in-memory buffer while degraded",
)
_VOLATILE_DROPPED = metrics.REGISTRY.counter(
    "repro_storage_volatile_dropped_total",
    "Volatile buffered ticks evicted because the degraded buffer filled",
)
_DEGRADED_TENANTS = metrics.REGISTRY.gauge(
    "repro_storage_degraded_tenants",
    "Tenants currently in degraded in-memory persistence mode",
)
_TENANT_DURABILITY = metrics.REGISTRY.gauge(
    "repro_fleet_tenant_durability",
    "Per-tenant persistence mode (0 durable, 1 degraded)",
    labelnames=("tenant",),
)

_RawTick = Tuple[float, Dict[str, float], Dict[str, str]]

#: persistence modes a tenant can be in.
DURABLE = "durable"
DEGRADED = "degraded"


class TenantDurability:
    """Durability policy for one tenant's WAL + checkpoint store.

    Parameters
    ----------
    tenant:
        Name used in transition callbacks and labeled metrics.
    wal, checkpoints:
        The persistence primitives being guarded.
    max_retries:
        Transient-error retries per operation before degrading.
    backoff_s, backoff_factor, max_backoff_s:
        Bounded exponential backoff between retries.
    probe_every:
        While degraded, probe the disk after this many buffered appends.
    max_volatile_ticks:
        Degraded-buffer cap; the oldest buffered tick is evicted (and
        counted in ``repro_storage_volatile_dropped_total``) beyond it.
    sleep:
        Injectable clock for tests (defaults to ``time.sleep``).
    on_transition:
        Called as ``on_transition(mode, reason)`` on every degrade /
        re-promote, letting the scheduler journal health transitions.
    label_metrics:
        When True, exports the per-tenant
        ``repro_fleet_tenant_durability`` gauge (label-cardinality
        opt-in, matching the fleet's other per-tenant families).
    """

    def __init__(
        self,
        tenant: str,
        wal: TickWAL,
        checkpoints: CheckpointStore,
        max_retries: int = 2,
        backoff_s: float = 0.01,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 0.5,
        probe_every: int = 8,
        max_volatile_ticks: int = 4096,
        sleep: Callable[[float], None] = _time.sleep,
        on_transition: Optional[Callable[[str, str], None]] = None,
        label_metrics: bool = False,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if probe_every < 1:
            raise ValueError("probe_every must be at least 1")
        if max_volatile_ticks < 1:
            raise ValueError("max_volatile_ticks must be at least 1")
        self.tenant = tenant
        self.wal = wal
        self.checkpoints = checkpoints
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff_s = float(max_backoff_s)
        self.probe_every = int(probe_every)
        self.max_volatile_ticks = int(max_volatile_ticks)
        self._sleep = sleep
        self._on_transition = on_transition
        self._label_metrics = bool(label_metrics)
        #: current persistence mode: ``"durable"`` or ``"degraded"``.
        self.mode = DURABLE
        #: acknowledged-but-volatile ticks held while degraded.
        self.buffer: Deque[_RawTick] = deque()
        #: why the tenant last degraded (classification + errno text).
        self.degraded_reason = ""
        self._since_probe = 0
        #: cumulative counts for reports.
        self.degraded_count = 0
        self.repromoted_count = 0
        self.volatile_dropped = 0
        if self._label_metrics:
            _TENANT_DURABILITY.labels(tenant=tenant).set(0)

    # -- mode transitions ----------------------------------------------
    def _degrade(self, reason: str) -> None:
        if self.mode == DEGRADED:
            return
        self.mode = DEGRADED
        self.degraded_reason = reason
        self.degraded_count += 1
        self._since_probe = 0
        _DEGRADED_TRANSITIONS.inc()
        _DEGRADED_TENANTS.inc()
        if self._label_metrics:
            _TENANT_DURABILITY.labels(tenant=self.tenant).set(1)
        if self._on_transition is not None:
            self._on_transition(DEGRADED, reason)

    def _promote(self) -> None:
        if self.mode == DURABLE:
            return
        self.mode = DURABLE
        self.degraded_reason = ""
        self.repromoted_count += 1
        _REPROMOTIONS.inc()
        _DEGRADED_TENANTS.dec()
        if self._label_metrics:
            _TENANT_DURABILITY.labels(tenant=self.tenant).set(0)
        if self._on_transition is not None:
            self._on_transition(DURABLE, "disk healed")

    # -- retry machinery -----------------------------------------------
    def _with_retries(self, op: Callable[[], None]) -> None:
        """Run *op*, absorbing up to ``max_retries`` transient failures.

        Re-raises the final ``OSError`` when retries exhaust, the disk
        is full, or the error is fatal — the caller decides to degrade.
        """
        delay = self.backoff_s
        for attempt in range(self.max_retries + 1):
            try:
                op()
                return
            except OSError as exc:
                _fs.count_write_error()
                kind = classify_storage_error(exc)
                if kind != "transient" or attempt == self.max_retries:
                    raise
                _RETRIES.inc()
                if delay > 0:
                    self._sleep(min(delay, self.max_backoff_s))
                delay *= self.backoff_factor

    # -- the persistence API the scheduler calls ------------------------
    def append(
        self,
        time: float,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]] = None,
    ) -> bool:
        """Persist one tick; True when it reached the WAL (durable path).

        While degraded the tick is acknowledged into the bounded
        volatile buffer and False is returned; every ``probe_every``
        buffered appends the disk is probed and, if it drains, this very
        tick lands durably after all.
        """
        if self.mode == DEGRADED:
            self._buffer_tick(time, numeric_row, categorical_row)
            self._since_probe += 1
            if self._since_probe >= self.probe_every:
                self._since_probe = 0
                self._probe()
            return self.mode == DURABLE
        # ``wal.appended`` advances exactly when a record's write lands,
        # so a failed append whose counter moved means only the batch
        # fsync failed: the retry (and any later probe) must flush, not
        # re-append — the log never holds the tick twice.
        before = self.wal.appended

        def _append_once() -> None:
            if self.wal.appended == before:
                self.wal.append(time, numeric_row, categorical_row)
            else:
                self.wal.flush()

        try:
            self._with_retries(_append_once)
            return True
        except OSError as exc:
            self._degrade(f"{classify_storage_error(exc)}: {exc}")
            if self.wal.appended == before:
                self._buffer_tick(time, numeric_row, categorical_row)
            return False

    def save_checkpoint(self, payload: Mapping[str, object]) -> bool:
        """Persist a checkpoint; True only when it durably landed.

        A degraded tenant probes the disk first — a checkpoint attempt
        is exactly the moment a healed disk should be noticed — and
        declines (returns False) while still degraded, so callers never
        mistake a volatile epoch for a durable one.
        """
        if self.mode == DEGRADED:
            self._probe()
            if self.mode == DEGRADED:
                return False
        try:
            self._with_retries(lambda: self.checkpoints.save(payload))
            return True
        except OSError as exc:
            self._degrade(f"{classify_storage_error(exc)}: {exc}")
            return False

    def flush(self) -> bool:
        """Fsync the WAL; degrades (and returns False) on failure."""
        if self.mode == DEGRADED:
            return False
        try:
            self._with_retries(self.wal.flush)
            return True
        except OSError as exc:
            self._degrade(f"{classify_storage_error(exc)}: {exc}")
            return False

    def retire_wal(self, *, mark: bool, max_bytes: int) -> bool:
        """Advance WAL retention after a checkpoint; never raises.

        Retention is maintenance, not an acknowledged durability
        promise: a rotation fsync that keeps failing past its transient
        retries simply leaves the mark where it was — everything on
        disk stays replayable and the next checkpoint tries again — so
        the tenant is not degraded over it.  Compaction runs regardless
        of the mark's fate: a sick disk must not also become an
        unbounded one.  Returns True when both steps landed.
        """
        ok = True
        if mark:
            try:
                self._with_retries(self.wal.mark_checkpoint)
            except OSError:
                ok = False
        try:
            self.wal.compact(max_bytes)
        except OSError:
            _fs.count_write_error()
            ok = False
        return ok

    # -- degraded-mode internals ----------------------------------------
    def _buffer_tick(
        self,
        time: float,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]],
    ) -> None:
        self.buffer.append(
            (
                float(time),
                {a: float(v) for a, v in numeric_row.items()},
                {a: str(v) for a, v in (categorical_row or {}).items()},
            )
        )
        _VOLATILE_TICKS.inc()
        if len(self.buffer) > self.max_volatile_ticks:
            self.buffer.popleft()
            self.volatile_dropped += 1
            _VOLATILE_DROPPED.inc()

    def _probe(self) -> bool:
        """Try draining the volatile buffer to disk; True on re-promote.

        Each buffered tick is popped only after its append succeeds —
        a mid-drain failure leaves the remainder buffered, and the
        half-written line it may have left behind fails its CRC on
        replay, so a later retry cannot duplicate the tick.
        """
        _PROBES.inc()
        try:
            while self.buffer:
                t, num, cat = self.buffer[0]
                before = self.wal.appended
                try:
                    self.wal.append(t, num, cat)
                except OSError:
                    if self.wal.appended > before:
                        # the write landed, only its fsync failed: the
                        # tick is in the log, so a later probe must not
                        # append it again
                        self.buffer.popleft()
                    raise
                self.buffer.popleft()
            self.wal.flush()
        except OSError:
            _fs.count_write_error()
            return False
        self._promote()
        return True

    def flush_volatile(self) -> int:
        """Final drain attempt (for close); returns ticks still stranded."""
        if self.buffer:
            self._probe()
        return len(self.buffer)
