"""Frozen copies of the pre-streaming detection implementations.

Verbatim snapshots of the seed Section 7 detector stack — the Python-loop
Equation 4, the per-row region scan, and the dense-matrix ``deque``
DBSCAN — kept so that

* the equivalence tests (``tests/test_stream.py``) can assert the
  vectorized / indexed / incremental paths reproduce what the code
  produced before this subsystem existed (same mask, regions, selected
  attributes, ε on identical windows), and
* ``benchmarks/bench_online_detect.py`` can time the true "re-run the
  batch detector every tick" baseline.

They intentionally preserve the original inefficiencies (per-window
``np.median`` loop, O(n²) distance matrix, per-point queue walk) and must
never be called from the live pipeline.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence

import numpy as np

from repro.core.anomaly import DEFAULT_WINDOW, DetectionResult
from repro.core.separation import normalize_values
from repro.data.dataset import Dataset
from repro.data.regions import Region

__all__ = [
    "golden_potential_power",
    "golden_mask_to_regions",
    "golden_k_distances",
    "GoldenDBSCAN",
    "GoldenAnomalyDetector",
    "GOLDEN_NOISE",
]

GOLDEN_NOISE = -1


def golden_potential_power(
    values: np.ndarray, window: int = DEFAULT_WINDOW
) -> float:
    """Seed Equation 4: a Python loop with one ``np.median`` per window."""
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return 0.0
    window = max(min(int(window), n), 1)
    overall = float(np.median(values))
    best = 0.0
    for start in range(0, n - window + 1):
        local = float(np.median(values[start : start + window]))
        best = max(best, abs(overall - local))
    return best


def golden_mask_to_regions(
    timestamps: np.ndarray, mask: np.ndarray
) -> List[Region]:
    """Seed per-row scan converting a boolean mask into regions."""
    regions: List[Region] = []
    start_idx: Optional[int] = None
    for i, flagged in enumerate(mask):
        if flagged and start_idx is None:
            start_idx = i
        elif not flagged and start_idx is not None:
            regions.append(
                Region(float(timestamps[start_idx]), float(timestamps[i - 1]))
            )
            start_idx = None
    if start_idx is not None:
        regions.append(
            Region(float(timestamps[start_idx]), float(timestamps[-1]))
        )
    return regions


def _golden_pairwise(points: np.ndarray) -> np.ndarray:
    sq = np.sum(points * points, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * points @ points.T
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def golden_k_distances(points: np.ndarray, k: int) -> np.ndarray:
    """Seed k-dist list via a dense distance matrix and a full sort."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = points.shape[0]
    if n == 0:
        return np.zeros(0)
    if k < 1:
        raise ValueError("k must be at least 1")
    k = min(k, n - 1)
    if k == 0:
        return np.zeros(n)
    distances = _golden_pairwise(points)
    sorted_rows = np.sort(distances, axis=1)
    return sorted_rows[:, k]


class GoldenDBSCAN:
    """Seed DBSCAN: dense O(n²) neighbour matrix, per-point queue walk.

    Preserves the seed's border-point semantics (a border point reachable
    from two clusters ends with the *last* cluster's label — the double
    label write the live implementation fixed).
    """

    def __init__(self, eps: Optional[float] = None, min_pts: int = 3) -> None:
        if min_pts < 1:
            raise ValueError("min_pts must be at least 1")
        self.eps = eps
        self.min_pts = min_pts
        self.labels_: Optional[np.ndarray] = None
        self.eps_: Optional[float] = None

    def fit(self, points: np.ndarray) -> "GoldenDBSCAN":
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[:, None]
        n = points.shape[0]
        if n == 0:
            self.labels_ = np.zeros(0, dtype=np.int64)
            self.eps_ = self.eps or 0.0
            return self

        eps = self.eps
        if eps is None:
            kd = golden_k_distances(points, self.min_pts)
            if kd.size:
                eps = max(float(kd.max()) / 4.0, float(np.quantile(kd, 0.95)))
            else:
                eps = 0.0
        if eps <= 0:
            self.labels_ = np.zeros(n, dtype=np.int64)
            self.eps_ = eps
            return self
        self.eps_ = eps

        distances = _golden_pairwise(points)
        neighbours = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
        labels = np.full(n, GOLDEN_NOISE, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        cluster_id = 0
        for i in range(n):
            if visited[i]:
                continue
            visited[i] = True
            if neighbours[i].size < self.min_pts:
                continue
            labels[i] = cluster_id
            queue = deque(neighbours[i])
            while queue:
                j = queue.popleft()
                if labels[j] == GOLDEN_NOISE:
                    labels[j] = cluster_id
                if visited[j]:
                    continue
                visited[j] = True
                labels[j] = cluster_id
                if neighbours[j].size >= self.min_pts:
                    queue.extend(neighbours[j])
            cluster_id += 1
        self.labels_ = labels
        return self

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        self.fit(points)
        assert self.labels_ is not None
        return self.labels_

    def cluster_sizes(self) -> dict:
        if self.labels_ is None:
            raise RuntimeError("fit() has not been called")
        sizes: dict = {}
        for label in self.labels_:
            if label == GOLDEN_NOISE:
                continue
            sizes[int(label)] = sizes.get(int(label), 0) + 1
        return sizes


class GoldenAnomalyDetector:
    """Seed Section 7 detector: full recompute per call, loop kernels."""

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        pp_threshold: float = 0.3,
        min_pts: int = 3,
        cluster_fraction: float = 0.2,
        include_noise: bool = True,
        min_region_s: float = 5.0,
        gap_fill_s: float = 3.0,
    ) -> None:
        self.window = window
        self.pp_threshold = pp_threshold
        self.min_pts = min_pts
        self.cluster_fraction = cluster_fraction
        self.include_noise = include_noise
        self.min_region_s = min_region_s
        self.gap_fill_s = gap_fill_s

    def select_attributes(
        self, dataset: Dataset, attributes: Optional[Sequence[str]] = None
    ) -> List[str]:
        names = (
            [a for a in attributes if dataset.is_numeric(a)]
            if attributes is not None
            else dataset.numeric_attributes
        )
        selected = []
        for attr in names:
            normalized = normalize_values(dataset.column(attr))
            if golden_potential_power(normalized, self.window) > self.pp_threshold:
                selected.append(attr)
        return selected

    def detect(
        self, dataset: Dataset, attributes: Optional[Sequence[str]] = None
    ) -> DetectionResult:
        selected = self.select_attributes(dataset, attributes)
        n = dataset.n_rows
        if not selected or n == 0:
            return DetectionResult(
                mask=np.zeros(n, dtype=bool),
                regions=[],
                selected_attributes=[],
                eps=0.0,
            )
        matrix = np.column_stack(
            [normalize_values(dataset.column(a)) for a in selected]
        )
        clusterer = GoldenDBSCAN(eps=None, min_pts=self.min_pts)
        labels = clusterer.fit_predict(matrix)
        sizes = clusterer.cluster_sizes()
        threshold = self.cluster_fraction * n
        abnormal_clusters = {
            cid for cid, size in sizes.items() if size < threshold
        }
        mask = np.isin(labels, sorted(abnormal_clusters))
        if self.include_noise:
            mask |= labels == GOLDEN_NOISE
        mask = self._smooth_mask(mask, dataset.timestamps)
        return DetectionResult(
            mask=mask,
            regions=golden_mask_to_regions(dataset.timestamps, mask),
            selected_attributes=selected,
            eps=float(clusterer.eps_ or 0.0),
        )

    def _smooth_mask(
        self, mask: np.ndarray, timestamps: np.ndarray
    ) -> np.ndarray:
        smoothed = mask.copy()
        for gap in golden_mask_to_regions(timestamps, ~smoothed):
            is_interior = (
                gap.start > timestamps[0] and gap.end < timestamps[-1]
            )
            if is_interior and gap.duration + 1.0 <= self.gap_fill_s:
                smoothed[gap.contains(timestamps)] = True
        for run in golden_mask_to_regions(timestamps, smoothed):
            if run.duration + 1.0 <= self.min_region_s:
                smoothed[run.contains(timestamps)] = False
        return smoothed
