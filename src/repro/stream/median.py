"""Order-statistic structures for the streaming detector.

The incremental Equation 4 needs, per attribute and per tick, (i) the
median of everything in the telemetry ring buffer, (ii) the median of the
most recent ``w`` samples, and (iii) the min/max of the window medians
currently alive in the buffer.  Recomputing those from scratch is what
makes the batch detector O(n·w log w) per attribute per tick; the
structures here update them in O(log n) / amortized O(1):

* :class:`SlidingMedian` — the classic two-heap median with lazy
  deletion, supporting ``add``/``remove`` of arbitrary values.  Its
  ``median()`` reproduces ``np.median`` exactly (the middle element, or
  the mean ``(a + b) / 2`` of the two middle elements).
* :class:`SlidingExtrema` — paired monotonic deques tracking the min and
  max of a FIFO stream whose entries expire by sequence number.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Tuple

__all__ = ["SlidingMedian", "SlidingExtrema"]


class SlidingMedian:
    """Median of a multiset under arbitrary ``add``/``remove``.

    Two heaps split the values around the median (``_low`` holds the
    smaller half as a negated max-heap, ``_high`` the larger half);
    removals are lazy — marked in ``_delayed`` and physically dropped
    only when they surface at a heap top.  Both operations are O(log n)
    amortized.
    """

    __slots__ = (
        "_low",
        "_high",
        "_low_size",
        "_high_size",
        "_delayed_low",
        "_delayed_high",
    )

    def __init__(self) -> None:
        self._low: List[float] = []  # negated values (max-heap)
        self._high: List[float] = []  # min-heap
        self._low_size = 0  # live (non-deleted) entries per side
        self._high_size = 0
        # Deletions are tracked per side: every copy of a value strictly
        # below the low-top lives in the low heap, and a value equal to
        # the low-top has a live copy there, so the side a removal debits
        # is unambiguous — and a pending deletion can then never be
        # consumed by the other heap's prune (which would desync the
        # logical sizes from the physical heaps).
        self._delayed_low: Dict[float, int] = {}
        self._delayed_high: Dict[float, int] = {}

    def __len__(self) -> int:
        return self._low_size + self._high_size

    def _prune_low(self) -> None:
        while self._low:
            count = self._delayed_low.get(-self._low[0], 0)
            if not count:
                break
            value = -heapq.heappop(self._low)
            if count == 1:
                del self._delayed_low[value]
            else:
                self._delayed_low[value] = count - 1

    def _prune_high(self) -> None:
        while self._high:
            count = self._delayed_high.get(self._high[0], 0)
            if not count:
                break
            value = heapq.heappop(self._high)
            if count == 1:
                del self._delayed_high[value]
            else:
                self._delayed_high[value] = count - 1

    def _rebalance(self) -> None:
        if self._low_size > self._high_size + 1:
            self._prune_low()
            heapq.heappush(self._high, -heapq.heappop(self._low))
            self._low_size -= 1
            self._high_size += 1
            self._prune_low()
        elif self._low_size < self._high_size:
            self._prune_high()
            heapq.heappush(self._low, -heapq.heappop(self._high))
            self._high_size -= 1
            self._low_size += 1
            self._prune_high()

    def add(self, value: float) -> None:
        """Insert *value* into the multiset."""
        self._prune_low()
        if self._low and value <= -self._low[0]:
            heapq.heappush(self._low, -value)
            self._low_size += 1
        else:
            heapq.heappush(self._high, value)
            self._high_size += 1
        self._rebalance()

    def remove(self, value: float) -> None:
        """Remove one occurrence of *value* (which must be present)."""
        if not len(self):
            raise ValueError("remove from empty SlidingMedian")
        self._prune_low()
        if self._low and value <= -self._low[0]:
            self._delayed_low[value] = self._delayed_low.get(value, 0) + 1
            self._low_size -= 1
            self._prune_low()
        else:
            self._delayed_high[value] = self._delayed_high.get(value, 0) + 1
            self._high_size -= 1
            self._prune_high()
        self._rebalance()

    def median(self) -> float:
        """The ``np.median`` of the current multiset."""
        if not len(self):
            raise ValueError("median of empty SlidingMedian")
        self._prune_low()
        self._prune_high()
        if self._low_size > self._high_size:
            return float(-self._low[0])
        return (float(-self._low[0]) + float(self._high[0])) / 2.0


class SlidingExtrema:
    """Min/max of a FIFO stream with expiry by monotone sequence number."""

    __slots__ = ("_min", "_max")

    def __init__(self) -> None:
        self._min: Deque[Tuple[int, float]] = deque()
        self._max: Deque[Tuple[int, float]] = deque()

    def __len__(self) -> int:
        return len(self._min)

    def push(self, seq: int, value: float) -> None:
        """Record *value* at sequence *seq* (seq must be increasing)."""
        while self._min and self._min[-1][1] >= value:
            self._min.pop()
        self._min.append((seq, value))
        while self._max and self._max[-1][1] <= value:
            self._max.pop()
        self._max.append((seq, value))

    def expire(self, oldest_seq: int) -> None:
        """Drop entries with ``seq < oldest_seq``."""
        while self._min and self._min[0][0] < oldest_seq:
            self._min.popleft()
        while self._max and self._max[0][0] < oldest_seq:
            self._max.popleft()

    def min(self) -> float:
        if not self._min:
            raise ValueError("min of empty SlidingExtrema")
        return self._min[0][1]

    def max(self) -> float:
        if not self._max:
            raise ValueError("max of empty SlidingExtrema")
        return self._max[0][1]
