"""Crash supervision for the streaming detector.

Real collectors die: the agent process gets OOM-killed, the DBMS drops
the stats connection, the network partitions.  :class:`StreamSupervisor`
wraps a :class:`~repro.stream.detector.StreamingDetector` and a
restartable tick source, and turns collector faults into bounded
downtime instead of a lost diagnosis session:

* every ``checkpoint_every`` ticks the detector state is checkpointed
  (:meth:`StreamingDetector.checkpoint` — JSON-able, replay-exact);
* on a fault the supervisor sleeps an exponentially-backed-off delay,
  asks the source factory for a fresh stream, restores the detector from
  the last checkpoint, and skips ticks already processed before the
  checkpoint — ticks between checkpoint and crash are re-processed,
  which is safe because restore is bit-exact and closed regions are
  de-duplicated by their end timestamp;
* the backoff delay resets once a restarted source makes progress, so a
  flapping collector is retried quickly while a hard-down one backs off
  to ``max_backoff_s``;
* with a ``wal_dir``, recovery goes through a write-ahead tick log
  (:mod:`repro.stream.wal`): every tick is logged *before* the detector
  sees it, checkpoints are persisted atomically (and truncate the log),
  and a fault — or a whole process restart — restores the last durable
  checkpoint and replays the logged ticks through the restored
  detector.  Replay is bit-exact and the source resumes strictly after
  the last logged tick, so **zero ticks are re-processed** and the
  recovered detector is bitwise-identical to an uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.data.regions import Region
from repro.faults.injectors import CollectorFault, Tick
from repro.obs import metrics, trace
from repro.stream.detector import StreamingDetector
from repro.stream.wal import CheckpointStore, TickWAL

__all__ = ["StreamSupervisor", "SupervisorReport"]

_SUP_TICKS = metrics.REGISTRY.counter(
    "repro_supervisor_ticks_total",
    "Ticks handed to the supervised detector (incl. re-processed)",
)
_SUP_RESTARTS = metrics.REGISTRY.counter(
    "repro_supervisor_restarts_total", "Collector faults survived"
)
_SUP_CHECKPOINTS = metrics.REGISTRY.counter(
    "repro_supervisor_checkpoints_total", "Detector checkpoints taken"
)
_SUP_WAL_REPLAYED = metrics.REGISTRY.counter(
    "repro_supervisor_wal_replayed_ticks_total",
    "Ticks recovered from the write-ahead log",
)
_SUP_REPROCESSED = metrics.REGISTRY.counter(
    "repro_supervisor_reprocessed_ticks_total",
    "Source ticks handed to the detector more than once",
)
_SUP_BACKOFF_RESETS = metrics.REGISTRY.counter(
    "repro_supervisor_backoff_resets_total",
    "Backoff delays reset because a restarted source made progress",
)
_SUP_CHECKPOINT_SECONDS = metrics.REGISTRY.histogram(
    "repro_supervisor_checkpoint_seconds",
    "Wall time of one checkpoint (serialize + durable save)",
)


@dataclass
class SupervisorReport:
    """What one :meth:`StreamSupervisor.run` accomplished.

    The scalar fields are sourced from the process-wide metrics registry
    (:mod:`repro.obs.metrics`): :meth:`StreamSupervisor.run` snapshots
    the supervisor counters when it starts and reports the deltas, so
    the report and any scrape of the registry can never disagree.
    """

    #: ticks handed to the detector, including any re-processed after a
    #: checkpoint restore.
    ticks_processed: int = 0
    #: collector faults survived (each one restart).
    restarts: int = 0
    #: closed abnormal regions, de-duplicated across restarts.
    closed_regions: List[Region] = field(default_factory=list)
    #: backoff delays slept, in order.
    backoff_waits: List[float] = field(default_factory=list)
    #: checkpoints taken.
    checkpoints: int = 0
    #: ticks recovered from the write-ahead log (0 without ``wal_dir``).
    wal_replayed_ticks: int = 0
    #: source ticks handed to the detector more than once (recovery by
    #: re-pulling; always 0 with ``wal_dir``, where the WAL replays them
    #: instead).
    reprocessed_ticks: int = 0
    #: backoff delays snapped back to ``backoff_s`` because a restarted
    #: source made progress before faulting again.
    backoff_resets: int = 0

    def asdict(self) -> Dict[str, object]:
        """The report as a plain dict (dict-era call sites and tests)."""
        return dataclasses.asdict(self)


#: The registry counters each scalar report field is the delta of.
_REPORT_COUNTERS = {
    "ticks_processed": _SUP_TICKS,
    "restarts": _SUP_RESTARTS,
    "checkpoints": _SUP_CHECKPOINTS,
    "wal_replayed_ticks": _SUP_WAL_REPLAYED,
    "reprocessed_ticks": _SUP_REPROCESSED,
    "backoff_resets": _SUP_BACKOFF_RESETS,
}


class StreamSupervisor:
    """Run a detector over a restartable tick source with crash recovery.

    Parameters
    ----------
    detector:
        The streaming detector to supervise.
    source_factory:
        ``source_factory(attempt)`` returns a fresh iterable of
        ``(time, numeric_row, categorical_row)`` ticks from the beginning
        of the stream; ``attempt`` is 0 for the first run and increments
        on every restart (tests use it to stop injecting faults).
    max_retries:
        Faults beyond this many restarts re-raise to the caller.
    backoff_s / backoff_factor / max_backoff_s:
        Exponential backoff schedule; the delay resets to ``backoff_s``
        whenever a restarted source makes progress before faulting again.
    checkpoint_every:
        Ticks between detector checkpoints (0 disables periodic
        checkpoints; recovery then restarts from the beginning).
    sleep:
        Injectable sleep function (tests pass ``lambda s: None``).
    fault_types:
        Exception types treated as recoverable collector faults.
    wal_dir:
        Directory for durable recovery state (``ticks.wal`` +
        ``checkpoint.json``).  When set, every tick is write-ahead
        logged, checkpoints persist atomically, and recovery — from a
        fault or a fresh process — replays the log instead of
        re-pulling ticks from the source.  ``None`` (default) keeps the
        original in-memory checkpointing.
    fsync_every:
        WAL appends per fsync (see :class:`~repro.stream.wal.TickWAL`).
    """

    def __init__(
        self,
        detector: StreamingDetector,
        source_factory: Callable[[int], Iterable[Tick]],
        max_retries: int = 5,
        backoff_s: float = 0.1,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 30.0,
        checkpoint_every: int = 10,
        sleep: Optional[Callable[[float], None]] = None,
        fault_types: Tuple[type, ...] = (CollectorFault,),
        wal_dir: Optional[Union[str, Path]] = None,
        fsync_every: int = 8,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_s <= 0 or backoff_factor < 1.0 or max_backoff_s <= 0:
            raise ValueError("backoff schedule must be positive")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self.detector = detector
        self.source_factory = source_factory
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff_s = float(max_backoff_s)
        self.checkpoint_every = int(checkpoint_every)
        self._sleep = sleep if sleep is not None else _time.sleep
        self.fault_types = tuple(fault_types)
        self.wal_dir = Path(wal_dir) if wal_dir is not None else None
        self.fsync_every = int(fsync_every)

    def run(self) -> SupervisorReport:
        """Drive the detector until the source is exhausted.

        Returns the report; ``self.detector`` afterwards is the detector
        instance that finished the stream (it is replaced on restore).
        With ``wal_dir``, a previous process's durable checkpoint and
        write-ahead log are recovered first, so a restarted supervisor
        continues exactly where the dead one stopped.
        """
        marks = {
            name: counter.value for name, counter in _REPORT_COUNTERS.items()
        }
        closed_regions: List[Region] = []
        backoff_waits: List[float] = []
        detector = self.detector
        processed_until: Optional[float] = None
        seen_ends: set = set()
        span = trace.span("supervisor.run", wal=self.wal_dir is not None)

        wal: Optional[TickWAL] = None
        ckpt_store: Optional[CheckpointStore] = None
        with span:
            if self.wal_dir is not None:
                ckpt_store = CheckpointStore(self.wal_dir / "checkpoint.json")
                wal = TickWAL(
                    self.wal_dir / "ticks.wal", fsync_every=self.fsync_every
                )
                stored = ckpt_store.load()
                if stored is not None:
                    detector = StreamingDetector.from_checkpoint(
                        stored["detector"]  # type: ignore[arg-type]
                    )
                    until = stored.get("processed_until")
                    processed_until = None if until is None else float(until)
                processed_until = self._replay_wal(
                    wal, detector, processed_until, closed_regions, seen_ends
                )

            # the recovery baseline: (state, processed-up-to time)
            checkpoint: Tuple[Dict[str, object], Optional[float]] = (
                detector.checkpoint(),
                processed_until,
            )
            high_water = processed_until
            delay = self.backoff_s
            attempt = 0
            restarts = 0
            ticks_processed = 0  # this run's source ticks (checkpoint cadence)
            try:
                while True:
                    progressed = False
                    try:
                        for tick in self.source_factory(attempt):
                            time, numeric_row, categorical_row = tick
                            if (
                                processed_until is not None
                                and time <= processed_until
                            ):
                                continue
                            if wal is not None:
                                # write-ahead: the tick is durable before the
                                # detector ever sees it
                                wal.append(time, numeric_row, categorical_row)
                            update = detector.tick(
                                time, numeric_row, categorical_row
                            )
                            if high_water is not None and time <= high_water:
                                _SUP_REPROCESSED.inc()
                            else:
                                high_water = float(time)
                            processed_until = float(time)
                            progressed = True
                            ticks_processed += 1
                            _SUP_TICKS.inc()
                            for region in update.closed_regions:
                                if region.end not in seen_ends:
                                    seen_ends.add(region.end)
                                    closed_regions.append(region)
                            if (
                                self.checkpoint_every
                                and ticks_processed % self.checkpoint_every
                                == 0
                            ):
                                t0 = _time.perf_counter()
                                state = detector.checkpoint()
                                checkpoint = (state, processed_until)
                                if ckpt_store is not None and wal is not None:
                                    ckpt_store.save(
                                        {
                                            "version": 1,
                                            "detector": state,
                                            "processed_until": processed_until,
                                        }
                                    )
                                    # retain segments back to the
                                    # previous checkpoint generation so
                                    # a fallback load still finds its
                                    # replay ticks (replay filters by
                                    # processed_until either way)
                                    wal.mark_checkpoint()
                                _SUP_CHECKPOINT_SECONDS.observe(
                                    _time.perf_counter() - t0
                                )
                                _SUP_CHECKPOINTS.inc()
                        break  # source exhausted: done
                    except self.fault_types:
                        restarts += 1
                        _SUP_RESTARTS.inc()
                        if restarts > self.max_retries:
                            self.detector = detector
                            raise
                        if progressed and delay != self.backoff_s:
                            _SUP_BACKOFF_RESETS.inc()
                        if progressed:
                            delay = self.backoff_s
                        backoff_waits.append(delay)
                        self._sleep(delay)
                        delay = min(
                            delay * self.backoff_factor, self.max_backoff_s
                        )
                        attempt += 1
                        detector = StreamingDetector.from_checkpoint(
                            checkpoint[0]
                        )
                        processed_until = checkpoint[1]
                        if wal is not None:
                            # recover the post-checkpoint ticks from the log
                            # instead of re-pulling them from the source
                            processed_until = self._replay_wal(
                                wal, detector, processed_until,
                                closed_regions, seen_ends,
                            )
            finally:
                if wal is not None:
                    wal.close()
            self.detector = detector
            report = SupervisorReport(
                closed_regions=closed_regions,
                backoff_waits=backoff_waits,
                **{
                    name: int(counter.value - marks[name])
                    for name, counter in _REPORT_COUNTERS.items()
                },
            )
            span.set(
                ticks=report.ticks_processed,
                restarts=report.restarts,
                closed_regions=len(report.closed_regions),
            )
        return report

    @staticmethod
    def _replay_wal(
        wal: TickWAL,
        detector: StreamingDetector,
        processed_until: Optional[float],
        closed_regions: List[Region],
        seen_ends: set,
    ) -> Optional[float]:
        """Feed logged ticks after *processed_until* through *detector*.

        Returns the new processed-until watermark.  Replay is bit-exact:
        the detector was restored from the checkpoint the log tails, so
        after replay its state equals an uninterrupted run's.
        """
        for time, numeric_row, categorical_row in wal.replay():
            if processed_until is not None and time <= processed_until:
                continue
            update = detector.tick(time, numeric_row, categorical_row)
            _SUP_WAL_REPLAYED.inc()
            processed_until = float(time)
            for region in update.closed_regions:
                if region.end not in seen_ends:
                    seen_ends.add(region.end)
                    closed_regions.append(region)
        return processed_until
