"""Crash supervision for the streaming detector.

Real collectors die: the agent process gets OOM-killed, the DBMS drops
the stats connection, the network partitions.  :class:`StreamSupervisor`
wraps a :class:`~repro.stream.detector.StreamingDetector` and a
restartable tick source, and turns collector faults into bounded
downtime instead of a lost diagnosis session:

* every ``checkpoint_every`` ticks the detector state is checkpointed
  (:meth:`StreamingDetector.checkpoint` — JSON-able, replay-exact);
* on a fault the supervisor sleeps an exponentially-backed-off delay,
  asks the source factory for a fresh stream, restores the detector from
  the last checkpoint, and skips ticks already processed before the
  checkpoint — ticks between checkpoint and crash are re-processed,
  which is safe because restore is bit-exact and closed regions are
  de-duplicated by their end timestamp;
* the backoff delay resets once a restarted source makes progress, so a
  flapping collector is retried quickly while a hard-down one backs off
  to ``max_backoff_s``.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.data.regions import Region
from repro.faults.injectors import CollectorFault, Tick
from repro.stream.detector import StreamingDetector

__all__ = ["StreamSupervisor", "SupervisorReport"]


@dataclass
class SupervisorReport:
    """What one :meth:`StreamSupervisor.run` accomplished."""

    #: ticks handed to the detector, including any re-processed after a
    #: checkpoint restore.
    ticks_processed: int = 0
    #: collector faults survived (each one restart).
    restarts: int = 0
    #: closed abnormal regions, de-duplicated across restarts.
    closed_regions: List[Region] = field(default_factory=list)
    #: backoff delays slept, in order.
    backoff_waits: List[float] = field(default_factory=list)
    #: checkpoints taken.
    checkpoints: int = 0


class StreamSupervisor:
    """Run a detector over a restartable tick source with crash recovery.

    Parameters
    ----------
    detector:
        The streaming detector to supervise.
    source_factory:
        ``source_factory(attempt)`` returns a fresh iterable of
        ``(time, numeric_row, categorical_row)`` ticks from the beginning
        of the stream; ``attempt`` is 0 for the first run and increments
        on every restart (tests use it to stop injecting faults).
    max_retries:
        Faults beyond this many restarts re-raise to the caller.
    backoff_s / backoff_factor / max_backoff_s:
        Exponential backoff schedule; the delay resets to ``backoff_s``
        whenever a restarted source makes progress before faulting again.
    checkpoint_every:
        Ticks between detector checkpoints (0 disables periodic
        checkpoints; recovery then restarts from the beginning).
    sleep:
        Injectable sleep function (tests pass ``lambda s: None``).
    fault_types:
        Exception types treated as recoverable collector faults.
    """

    def __init__(
        self,
        detector: StreamingDetector,
        source_factory: Callable[[int], Iterable[Tick]],
        max_retries: int = 5,
        backoff_s: float = 0.1,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 30.0,
        checkpoint_every: int = 10,
        sleep: Optional[Callable[[float], None]] = None,
        fault_types: Tuple[type, ...] = (CollectorFault,),
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_s <= 0 or backoff_factor < 1.0 or max_backoff_s <= 0:
            raise ValueError("backoff schedule must be positive")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self.detector = detector
        self.source_factory = source_factory
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff_s = float(max_backoff_s)
        self.checkpoint_every = int(checkpoint_every)
        self._sleep = sleep if sleep is not None else _time.sleep
        self.fault_types = tuple(fault_types)

    def run(self) -> SupervisorReport:
        """Drive the detector until the source is exhausted.

        Returns the report; ``self.detector`` afterwards is the detector
        instance that finished the stream (it is replaced on restore).
        """
        report = SupervisorReport()
        detector = self.detector
        # the recovery baseline: (state, processed-up-to time)
        checkpoint: Tuple[Dict[str, object], Optional[float]] = (
            detector.checkpoint(),
            None,
        )
        processed_until: Optional[float] = None
        seen_ends: set = set()
        delay = self.backoff_s
        attempt = 0
        while True:
            progressed = False
            try:
                for tick in self.source_factory(attempt):
                    time, numeric_row, categorical_row = tick
                    if (
                        processed_until is not None
                        and time <= processed_until
                    ):
                        continue
                    update = detector.tick(
                        time, numeric_row, categorical_row
                    )
                    processed_until = float(time)
                    progressed = True
                    report.ticks_processed += 1
                    for region in update.closed_regions:
                        if region.end not in seen_ends:
                            seen_ends.add(region.end)
                            report.closed_regions.append(region)
                    if (
                        self.checkpoint_every
                        and report.ticks_processed % self.checkpoint_every
                        == 0
                    ):
                        checkpoint = (
                            detector.checkpoint(),
                            processed_until,
                        )
                        report.checkpoints += 1
                break  # source exhausted: done
            except self.fault_types:
                report.restarts += 1
                if report.restarts > self.max_retries:
                    self.detector = detector
                    raise
                if progressed:
                    delay = self.backoff_s
                report.backoff_waits.append(delay)
                self._sleep(delay)
                delay = min(delay * self.backoff_factor, self.max_backoff_s)
                attempt += 1
                detector = StreamingDetector.from_checkpoint(checkpoint[0])
                processed_until = checkpoint[1]
        self.detector = detector
        return report
