"""Crash supervision for the streaming detector.

Real collectors die: the agent process gets OOM-killed, the DBMS drops
the stats connection, the network partitions.  :class:`StreamSupervisor`
wraps a :class:`~repro.stream.detector.StreamingDetector` and a
restartable tick source, and turns collector faults into bounded
downtime instead of a lost diagnosis session:

* every ``checkpoint_every`` ticks the detector state is checkpointed
  (:meth:`StreamingDetector.checkpoint` — JSON-able, replay-exact);
* on a fault the supervisor sleeps an exponentially-backed-off delay,
  asks the source factory for a fresh stream, restores the detector from
  the last checkpoint, and skips ticks already processed before the
  checkpoint — ticks between checkpoint and crash are re-processed,
  which is safe because restore is bit-exact and closed regions are
  de-duplicated by their end timestamp;
* the backoff delay resets once a restarted source makes progress, so a
  flapping collector is retried quickly while a hard-down one backs off
  to ``max_backoff_s``;
* with a ``wal_dir``, recovery goes through a write-ahead tick log
  (:mod:`repro.stream.wal`): every tick is logged *before* the detector
  sees it, checkpoints are persisted atomically (and truncate the log),
  and a fault — or a whole process restart — restores the last durable
  checkpoint and replays the logged ticks through the restored
  detector.  Replay is bit-exact and the source resumes strictly after
  the last logged tick, so **zero ticks are re-processed** and the
  recovered detector is bitwise-identical to an uninterrupted run.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.data.regions import Region
from repro.faults.injectors import CollectorFault, Tick
from repro.stream.detector import StreamingDetector
from repro.stream.wal import CheckpointStore, TickWAL

__all__ = ["StreamSupervisor", "SupervisorReport"]


@dataclass
class SupervisorReport:
    """What one :meth:`StreamSupervisor.run` accomplished."""

    #: ticks handed to the detector, including any re-processed after a
    #: checkpoint restore.
    ticks_processed: int = 0
    #: collector faults survived (each one restart).
    restarts: int = 0
    #: closed abnormal regions, de-duplicated across restarts.
    closed_regions: List[Region] = field(default_factory=list)
    #: backoff delays slept, in order.
    backoff_waits: List[float] = field(default_factory=list)
    #: checkpoints taken.
    checkpoints: int = 0
    #: ticks recovered from the write-ahead log (0 without ``wal_dir``).
    wal_replayed_ticks: int = 0
    #: source ticks handed to the detector more than once (recovery by
    #: re-pulling; always 0 with ``wal_dir``, where the WAL replays them
    #: instead).
    reprocessed_ticks: int = 0


class StreamSupervisor:
    """Run a detector over a restartable tick source with crash recovery.

    Parameters
    ----------
    detector:
        The streaming detector to supervise.
    source_factory:
        ``source_factory(attempt)`` returns a fresh iterable of
        ``(time, numeric_row, categorical_row)`` ticks from the beginning
        of the stream; ``attempt`` is 0 for the first run and increments
        on every restart (tests use it to stop injecting faults).
    max_retries:
        Faults beyond this many restarts re-raise to the caller.
    backoff_s / backoff_factor / max_backoff_s:
        Exponential backoff schedule; the delay resets to ``backoff_s``
        whenever a restarted source makes progress before faulting again.
    checkpoint_every:
        Ticks between detector checkpoints (0 disables periodic
        checkpoints; recovery then restarts from the beginning).
    sleep:
        Injectable sleep function (tests pass ``lambda s: None``).
    fault_types:
        Exception types treated as recoverable collector faults.
    wal_dir:
        Directory for durable recovery state (``ticks.wal`` +
        ``checkpoint.json``).  When set, every tick is write-ahead
        logged, checkpoints persist atomically, and recovery — from a
        fault or a fresh process — replays the log instead of
        re-pulling ticks from the source.  ``None`` (default) keeps the
        original in-memory checkpointing.
    fsync_every:
        WAL appends per fsync (see :class:`~repro.stream.wal.TickWAL`).
    """

    def __init__(
        self,
        detector: StreamingDetector,
        source_factory: Callable[[int], Iterable[Tick]],
        max_retries: int = 5,
        backoff_s: float = 0.1,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 30.0,
        checkpoint_every: int = 10,
        sleep: Optional[Callable[[float], None]] = None,
        fault_types: Tuple[type, ...] = (CollectorFault,),
        wal_dir: Optional[Union[str, Path]] = None,
        fsync_every: int = 8,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_s <= 0 or backoff_factor < 1.0 or max_backoff_s <= 0:
            raise ValueError("backoff schedule must be positive")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self.detector = detector
        self.source_factory = source_factory
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff_s = float(max_backoff_s)
        self.checkpoint_every = int(checkpoint_every)
        self._sleep = sleep if sleep is not None else _time.sleep
        self.fault_types = tuple(fault_types)
        self.wal_dir = Path(wal_dir) if wal_dir is not None else None
        self.fsync_every = int(fsync_every)

    def run(self) -> SupervisorReport:
        """Drive the detector until the source is exhausted.

        Returns the report; ``self.detector`` afterwards is the detector
        instance that finished the stream (it is replaced on restore).
        With ``wal_dir``, a previous process's durable checkpoint and
        write-ahead log are recovered first, so a restarted supervisor
        continues exactly where the dead one stopped.
        """
        report = SupervisorReport()
        detector = self.detector
        processed_until: Optional[float] = None
        seen_ends: set = set()

        wal: Optional[TickWAL] = None
        ckpt_store: Optional[CheckpointStore] = None
        if self.wal_dir is not None:
            ckpt_store = CheckpointStore(self.wal_dir / "checkpoint.json")
            wal = TickWAL(
                self.wal_dir / "ticks.wal", fsync_every=self.fsync_every
            )
            stored = ckpt_store.load()
            if stored is not None:
                detector = StreamingDetector.from_checkpoint(
                    stored["detector"]  # type: ignore[arg-type]
                )
                until = stored.get("processed_until")
                processed_until = None if until is None else float(until)
            processed_until = self._replay_wal(
                wal, detector, processed_until, report, seen_ends
            )

        # the recovery baseline: (state, processed-up-to time)
        checkpoint: Tuple[Dict[str, object], Optional[float]] = (
            detector.checkpoint(),
            processed_until,
        )
        high_water = processed_until
        delay = self.backoff_s
        attempt = 0
        try:
            while True:
                progressed = False
                try:
                    for tick in self.source_factory(attempt):
                        time, numeric_row, categorical_row = tick
                        if (
                            processed_until is not None
                            and time <= processed_until
                        ):
                            continue
                        if wal is not None:
                            # write-ahead: the tick is durable before the
                            # detector ever sees it
                            wal.append(time, numeric_row, categorical_row)
                        update = detector.tick(
                            time, numeric_row, categorical_row
                        )
                        if high_water is not None and time <= high_water:
                            report.reprocessed_ticks += 1
                        else:
                            high_water = float(time)
                        processed_until = float(time)
                        progressed = True
                        report.ticks_processed += 1
                        for region in update.closed_regions:
                            if region.end not in seen_ends:
                                seen_ends.add(region.end)
                                report.closed_regions.append(region)
                        if (
                            self.checkpoint_every
                            and report.ticks_processed
                            % self.checkpoint_every
                            == 0
                        ):
                            state = detector.checkpoint()
                            checkpoint = (state, processed_until)
                            if ckpt_store is not None and wal is not None:
                                ckpt_store.save(
                                    {
                                        "version": 1,
                                        "detector": state,
                                        "processed_until": processed_until,
                                    }
                                )
                                wal.truncate()
                            report.checkpoints += 1
                    break  # source exhausted: done
                except self.fault_types:
                    report.restarts += 1
                    if report.restarts > self.max_retries:
                        self.detector = detector
                        raise
                    if progressed:
                        delay = self.backoff_s
                    report.backoff_waits.append(delay)
                    self._sleep(delay)
                    delay = min(
                        delay * self.backoff_factor, self.max_backoff_s
                    )
                    attempt += 1
                    detector = StreamingDetector.from_checkpoint(
                        checkpoint[0]
                    )
                    processed_until = checkpoint[1]
                    if wal is not None:
                        # recover the post-checkpoint ticks from the log
                        # instead of re-pulling them from the source
                        processed_until = self._replay_wal(
                            wal, detector, processed_until, report, seen_ends
                        )
        finally:
            if wal is not None:
                wal.close()
        self.detector = detector
        return report

    @staticmethod
    def _replay_wal(
        wal: TickWAL,
        detector: StreamingDetector,
        processed_until: Optional[float],
        report: SupervisorReport,
        seen_ends: set,
    ) -> Optional[float]:
        """Feed logged ticks after *processed_until* through *detector*.

        Returns the new processed-until watermark.  Replay is bit-exact:
        the detector was restored from the checkpoint the log tails, so
        after replay its state equals an uninterrupted run's.
        """
        for time, numeric_row, categorical_row in wal.replay():
            if processed_until is not None and time <= processed_until:
                continue
            update = detector.tick(time, numeric_row, categorical_row)
            report.wal_replayed_ticks += 1
            processed_until = float(time)
            for region in update.closed_regions:
                if region.end not in seen_ends:
                    seen_ends.add(region.end)
                    report.closed_regions.append(region)
        return processed_until
