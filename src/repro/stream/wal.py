"""Segmented, checksummed write-ahead tick log + generational checkpoints.

The in-memory checkpoints of :class:`~repro.stream.supervisor.StreamSupervisor`
bound *detector-state* loss, but ticks that arrived between the last
checkpoint and a crash must be re-pulled from the source — acceptable for
a replayable source, wrong for a live collector whose ticks are gone the
moment they are consumed.  This module closes that gap with the classic
database recipe, hardened for a hostile filesystem:

* :class:`TickWAL` — an append-only log of raw ticks, split into
  fixed-size **segments** (``seg-%08d.wal`` files under a directory).
  Each record carries a CRC32 of its JSON payload
  (``"%08x %s\\n" % (crc32(payload), payload)``), so replay *verifies*
  every record and skips corrupt ones with a report instead of dying —
  a rotted middle record no longer silences everything after it.  Ticks
  are appended *before* they are handed to the detector (write-ahead),
  with fsyncs batched every ``fsync_every`` appends; a crash can lose at
  most the ``fsync_every - 1`` most recent *un-fsynced* appends (the
  acknowledged-durability window documented in docs/ROBUSTNESS.md).
  Segment rotation gives retention a unit: :meth:`mark_checkpoint`
  retains segments back to the *previous* checkpoint generation (so a
  checkpoint-generation fallback still finds its ticks), and
  :meth:`compact` bounds a quarantined lane's kept-for-replay bytes by
  dropping whole oldest segments.
* :class:`CheckpointStore` — atomically persisted detector checkpoints
  wrapped in a CRC32 envelope, keeping ``GENERATIONS = 2`` generations
  (``checkpoint.json`` + ``checkpoint.json.1``).  ``load`` verifies the
  checksum and falls back to the previous good generation rather than
  returning garbage.

All I/O routes through the fault-injectable storage shim
(:mod:`repro.faults.fs`); with no faults installed the shim is a direct
passthrough and behavior is bitwise-identical to the unsegmented WAL
this module replaces (asserted by ``bench_storage_chaos.py``).

Recovery replays the log *through the restored detector* — restore is
bit-exact and ``tick`` is deterministic, so the recovered detector is
bitwise-identical to one that never crashed, and the source is resumed
strictly after the last logged tick: zero ticks re-processed.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.faults import fs as _fs
from repro.obs import metrics

__all__ = [
    "CheckpointStore",
    "TickWAL",
    "WALReplayReport",
]

#: fsync after this many appends by default (batched durability).
DEFAULT_FSYNC_EVERY = 8

#: rotate to a fresh segment once the active one exceeds this many bytes.
DEFAULT_SEGMENT_BYTES = 256 * 1024

RawTick = Tuple[float, Dict[str, float], Dict[str, str]]

_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.wal$")

_WAL_CORRUPT = metrics.REGISTRY.counter(
    "repro_storage_wal_corrupt_records_total",
    "WAL records skipped during replay because their checksum or shape "
    "failed verification",
)
_CKPT_FALLBACKS = metrics.REGISTRY.counter(
    "repro_storage_checkpoint_fallbacks_total",
    "Checkpoint loads that fell back to the previous generation after "
    "the newest failed integrity checks",
)


def _segment_name(index: int) -> str:
    return f"seg-{index:08d}.wal"


def _segment_index(path: Path) -> Optional[int]:
    match = _SEGMENT_RE.match(path.name)
    return int(match.group(1)) if match else None


@dataclass
class WALReplayReport:
    """What replay found: how much was trusted, how much was rotted."""

    #: complete records that passed verification and were returned.
    records: int = 0
    #: records skipped because CRC or shape verification failed.
    corrupt_records: int = 0
    #: True when the final segment ended in an unterminated line — the
    #: expected signature of a crash mid-append, not corruption.
    torn_tail: bool = False
    #: segment files scanned, oldest first.
    segments: int = 0
    #: segment file names that contained at least one corrupt record.
    corrupt_segments: List[str] = field(default_factory=list)


class TickWAL:
    """Segmented append-only write-ahead log of raw telemetry ticks.

    Parameters
    ----------
    path:
        Log *directory* location; created (with parents) when absent.  A
        pre-segmentation single-file log at this path is migrated in
        place: the file becomes segment 0 and its CRC-less legacy
        records remain replayable.
    fsync_every:
        Number of appends per fsync.  1 makes every tick durable
        immediately; larger values batch the cost and risk losing at
        most ``fsync_every - 1`` trailing ticks on an OS crash (a
        process crash loses nothing — the data is already in the page
        cache).
    segment_bytes:
        Target segment size; an append that would push the active
        segment past it triggers rotation (the finished segment is
        fsynced before close, so every non-active segment is durable).
    fs:
        Storage shim override; defaults to the process-wide shim from
        :func:`repro.faults.fs.get_fs`, resolved per operation so
        ``scoped_fs`` applies.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fs: Optional[_fs.StorageShim] = None,
    ) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be at least 1")
        self.path = Path(path)
        self.fsync_every = int(fsync_every)
        self.segment_bytes = int(segment_bytes)
        self._fs = fs
        self._pending = 0
        #: ticks appended over this handle's lifetime.
        self.appended = 0
        #: appends known to have reached disk (fsynced) this lifetime.
        self.durable_appended = 0
        #: True when opening found (and truncated away) an unterminated
        #: final line left by a crash mid-append; surfaced as
        #: ``torn_tail`` by :meth:`replay_report`.
        self._sealed_torn_tail = False
        self._migrate_legacy_file()
        self.path.mkdir(parents=True, exist_ok=True)
        existing = self.segments()
        self._seg_index = _segment_index(existing[-1]) if existing else 0
        #: segment indices recorded by :meth:`mark_checkpoint` (≤ 2),
        #: seeded with the oldest on-disk segment so the *first* mark of
        #: this handle's lifetime never deletes anything: after a
        #: restart the surviving previous checkpoint generation may
        #: still need those segments for replay.
        self._marks: List[int] = (
            [_segment_index(existing[0])] if existing else [0]
        )
        self._open_segment()

    # ------------------------------------------------------------------
    @property
    def _fsio(self) -> _fs.StorageShim:
        return self._fs if self._fs is not None else _fs.get_fs()

    def _migrate_legacy_file(self) -> None:
        """Turn a pre-segmentation single-file log into segment 0.

        The two renames are not atomic together: a crash between them
        parks the entire pre-migration log at ``<name>.legacy-migrate``.
        Startup therefore also adopts such an orphan, completing the
        interrupted migration instead of silently abandoning it.
        """
        legacy = self.path.with_name(self.path.name + ".legacy-migrate")
        if self.path.is_file():
            self.path.rename(legacy)
        if legacy.is_file():
            self.path.mkdir(parents=True, exist_ok=True)
            target = self.path / _segment_name(0)
            if not target.exists():
                legacy.rename(target)

    def _open_segment(self) -> None:
        seg = self.path / _segment_name(self._seg_index)
        self._seal_torn_tail(seg)
        self._fh = open(seg, "a", encoding="utf-8")
        self._seg_written = seg.stat().st_size
        #: bytes of the active segment known to be on disk.
        self._durable_offset = self._seg_written

    def _seal_torn_tail(self, seg: Path) -> None:
        """Truncate an unterminated final line before appending to *seg*.

        A crash mid-append leaves a partial record with no newline.  Its
        tick was never acknowledged (the write did not complete), so the
        bytes carry no durability promise — but appending *after* them
        would merge the torn tail with the next record into one line
        whose CRC fails, silently losing that later, acknowledged tick
        on replay.  Sealing uses the real ``os`` primitives, not the
        fault shim: this is a structural repair of byte offsets, and an
        injected read corruption must not misplace the cut.
        """
        try:
            with open(seg, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1  # 0 when the whole file is torn
        with open(seg, "r+b") as fh:
            fh.truncate(keep)
            fh.flush()
            os.fsync(fh.fileno())
        self._sealed_torn_tail = True

    def segments(self) -> List[Path]:
        """All segment files on disk, oldest first."""
        if not self.path.is_dir():
            return []
        segs = [p for p in self.path.iterdir() if _segment_index(p) is not None]
        return sorted(segs, key=lambda p: _segment_index(p))

    def active_segment(self) -> Path:
        """The segment currently receiving appends."""
        return self.path / _segment_name(self._seg_index)

    # ------------------------------------------------------------------
    def append(
        self,
        time: float,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Log one raw tick (call *before* processing it).

        Raises ``OSError`` when the storage layer refuses the write or a
        batch-boundary fsync fails.  After a *write* failure, retrying
        the append cannot duplicate the tick — any partial line fails
        its CRC on replay.  After a failure with :attr:`appended`
        advanced, the record itself landed and only the fsync is owed:
        retry :meth:`flush`, not the append (as
        :class:`~repro.stream.durability.TenantDurability` does).
        """
        record = [
            float(time),
            {a: float(v) for a, v in numeric_row.items()},
            {a: str(v) for a, v in (categorical_row or {}).items()},
        ]
        payload = json.dumps(record)
        line = f"{zlib.crc32(payload.encode('utf-8')):08x} {payload}\n"
        if (
            self._seg_written > 0
            and self._seg_written + len(line) > self.segment_bytes
        ):
            self._rotate()
        self._fsio.write(self._fh, line)
        self._seg_written += len(line.encode("utf-8"))
        self.appended += 1
        self._pending += 1
        if self._pending >= self.fsync_every:
            self.flush()

    def flush(self) -> None:
        """Flush buffered appends and fsync the active segment."""
        self._fsio.fsync(self._fh)
        self._pending = 0
        self.durable_appended = self.appended
        self._durable_offset = self._seg_written

    def _rotate(self) -> None:
        """Seal the active segment (durably) and open the next one."""
        self.flush()  # full segments are always durable
        self._fh.close()
        self._seg_index += 1
        self._open_segment()

    # ------------------------------------------------------------------
    def replay(self) -> List[RawTick]:
        """All verified logged ticks, oldest first (see replay_report)."""
        return self.replay_report()[0]

    def replay_report(self) -> Tuple[List[RawTick], WALReplayReport]:
        """Verified ticks plus an account of what had to be skipped.

        Per-record CRCs let replay *continue past* a rotted record —
        corrupt records are counted (and the
        ``repro_storage_wal_corrupt_records_total`` counter bumped),
        never raised.  A torn tail — a final unterminated line in the
        last segment — is the expected signature of a crash mid-append
        and is reported separately from corruption.  Legacy CRC-less
        records (lines starting with ``[``) are parsed unverified.

        Replay needs *visibility*, not durability: buffered appends are
        flushed to the page cache with a plain ``flush()`` so a
        full-disk fault on the fsync path cannot break recovery reads.
        """
        if not self._fh.closed:
            try:
                self._fh.flush()
            except OSError:
                pass
        ticks: List[RawTick] = []
        report = WALReplayReport()
        # a tail sealed (truncated) at open is still a crash signature
        report.torn_tail = self._sealed_torn_tail
        segs = self.segments()
        report.segments = len(segs)
        for seg_pos, seg in enumerate(segs):
            try:
                payload = self._fsio.read_text(seg)
            except OSError:
                report.corrupt_records += 1
                report.corrupt_segments.append(seg.name)
                _WAL_CORRUPT.inc()
                continue
            lines = payload.split("\n")
            tail = lines.pop()  # "" when newline-terminated
            if tail:
                if seg_pos == len(segs) - 1:
                    report.torn_tail = True
                else:
                    report.corrupt_records += 1
                    _WAL_CORRUPT.inc()
                    if seg.name not in report.corrupt_segments:
                        report.corrupt_segments.append(seg.name)
            for line in lines:
                if not line:
                    continue
                tick = self._parse_record(line)
                if tick is None:
                    report.corrupt_records += 1
                    _WAL_CORRUPT.inc()
                    if seg.name not in report.corrupt_segments:
                        report.corrupt_segments.append(seg.name)
                    continue
                ticks.append(tick)
                report.records += 1
        return ticks, report

    @staticmethod
    def _parse_record(line: str) -> Optional[RawTick]:
        if line.startswith("["):  # legacy CRC-less record
            body = line
        else:
            if len(line) < 10 or line[8] != " ":
                return None
            crc_text, body = line[:8], line[9:]
            try:
                expected = int(crc_text, 16)
            except ValueError:
                return None
            if zlib.crc32(body.encode("utf-8")) != expected:
                return None
        try:
            time, numeric, categorical = json.loads(body)
            return (
                float(time),
                {a: float(v) for a, v in numeric.items()},
                {a: str(v) for a, v in categorical.items()},
            )
        except (ValueError, TypeError, AttributeError):
            return None

    # ------------------------------------------------------------------
    def truncate(self) -> None:
        """Drop all logged ticks and start a fresh segment."""
        if not self._fh.closed:
            try:
                self._fh.flush()
            except OSError:
                pass
            self._fh.close()
        for seg in self.segments():
            seg.unlink()
        self._seg_index += 1
        self._marks = [self._seg_index]
        self._pending = 0
        self._sealed_torn_tail = False
        self._open_segment()

    def mark_checkpoint(self) -> None:
        """Record a durable checkpoint and retire pre-previous segments.

        Rotates so the checkpoint boundary is a segment boundary, then
        keeps segments back to the *previous* checkpoint mark: if the
        newest checkpoint generation is later found corrupt and load
        falls back a generation, the ticks processed since that older
        checkpoint are still on disk for replay.  The mark list is
        seeded at open with the oldest on-disk segment, so the first
        mark of a handle's lifetime deletes nothing — after a restart
        the previous mark is unknown (it lived in the dead process's
        memory), and the surviving older checkpoint generation may
        still need every retained segment.  Deletion starts only from
        the second mark recorded by *this* handle.
        """
        if self._seg_written > 0:
            self._rotate()
        if not self._marks or self._marks[-1] != self._seg_index:
            self._marks.append(self._seg_index)
        if len(self._marks) > 2:
            self._marks = self._marks[-2:]
        floor = self._marks[0]
        for seg in self.segments():
            idx = _segment_index(seg)
            if idx is not None and idx < floor:
                seg.unlink()

    def compact(self, max_bytes: int) -> int:
        """Drop whole oldest segments until ≤ ``max_bytes`` retained.

        The active segment is never dropped.  Returns the number of
        bytes released.  This is the bound for quarantined lanes whose
        kept-for-replay log would otherwise grow without limit.
        """
        dropped = 0
        segs = self.segments()
        sizes = {seg: seg.stat().st_size for seg in segs}
        total = sum(sizes.values())
        active = self.active_segment()
        for seg in segs:
            if total <= max_bytes:
                break
            if seg == active:
                break
            seg.unlink()
            total -= sizes[seg]
            dropped += sizes[seg]
        return dropped

    def bytes_retained(self) -> int:
        """Total on-disk bytes across all retained segments."""
        if not self._fh.closed:
            try:
                self._fh.flush()
            except OSError:
                pass
        return sum(seg.stat().st_size for seg in self.segments())

    def durable_position(self) -> Tuple[Path, int]:
        """The active segment and its last fsynced byte offset.

        Everything in earlier segments is durable (rotation fsyncs
        before sealing); within the active segment, bytes past this
        offset may still be sitting in the OS page cache.
        """
        return self.active_segment(), self._durable_offset

    def close(self) -> None:
        """Flush and release the file handle.

        A refused final fsync is swallowed (and counted): close runs on
        teardown and recovery paths where raising would mask the real
        work — callers that need a durability guarantee call
        :meth:`flush` themselves and handle its ``OSError``.
        :attr:`durable_appended` stays honest either way.
        """
        if not self._fh.closed:
            try:
                self.flush()
            except OSError:
                _fs.count_write_error()
            self._fh.close()

    def __enter__(self) -> "TickWAL":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CheckpointStore:
    """Atomic, checksummed, generational JSON checkpoints.

    ``save`` wraps the state in a CRC32 envelope, writes it to a sibling
    temp file, fsyncs, rotates the current checkpoint to the previous
    generation (``<name>.1``), and renames the temp file into place — a
    crash at any point leaves at least one intact generation on disk.
    ``load`` verifies the envelope checksum and falls back to the
    previous generation when the newest is missing, torn, or rotted.
    """

    #: checkpoint generations kept on disk (current + previous).
    GENERATIONS = 2

    def __init__(
        self,
        path: Union[str, Path],
        fs: Optional[_fs.StorageShim] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fs = fs

    @property
    def _fsio(self) -> _fs.StorageShim:
        return self._fs if self._fs is not None else _fs.get_fs()

    @property
    def previous_path(self) -> Path:
        """Location of the previous (fallback) checkpoint generation."""
        return self.path.with_name(self.path.name + ".1")

    def save(self, state: Mapping[str, object]) -> None:
        """Durably replace the stored checkpoint with *state*.

        Raises ``OSError`` when the storage layer refuses any step; the
        on-disk generations are never left torn without a good fallback.
        """
        body = json.dumps(state, sort_keys=True)
        envelope = {"crc32": zlib.crc32(body.encode("utf-8")), "state": state}
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        fsio = self._fsio
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fsio.write(fh, json.dumps(envelope))
                fsio.fsync(fh)
            if self.path.exists():
                fsio.replace(self.path, self.previous_path)
            fsio.replace(tmp, self.path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def load(self) -> Optional[Dict[str, object]]:
        """The newest checkpoint that passes integrity verification.

        Tries the current generation first; on checksum mismatch, torn
        JSON, or a read error it falls back to the previous generation
        (counted in ``repro_storage_checkpoint_fallbacks_total``).
        Returns ``None`` only when no generation is trustworthy.
        """
        state = self._load_one(self.path)
        if state is not None:
            return state
        state = self._load_one(self.previous_path)
        if state is not None:
            _CKPT_FALLBACKS.inc()
            return state
        return None

    def _load_one(self, path: Path) -> Optional[Dict[str, object]]:
        try:
            text = self._fsio.read_text(path)
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            _fs.count_read_error()
            return None
        if (
            isinstance(payload, dict)
            and set(payload) == {"crc32", "state"}
        ):
            body = json.dumps(payload["state"], sort_keys=True)
            if zlib.crc32(body.encode("utf-8")) != payload["crc32"]:
                _fs.count_read_error()
                return None
            return payload["state"]
        # legacy envelope-less checkpoint: accepted unverified.
        return payload if isinstance(payload, dict) else None
