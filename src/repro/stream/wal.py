"""Write-ahead tick log: crash recovery without re-processing ticks.

The in-memory checkpoints of :class:`~repro.stream.supervisor.StreamSupervisor`
bound *detector-state* loss, but ticks that arrived between the last
checkpoint and a crash must be re-pulled from the source — acceptable for
a replayable source, wrong for a live collector whose ticks are gone the
moment they are consumed.  This module closes that gap with the classic
database recipe:

* :class:`TickWAL` — an append-only JSON-lines log of raw ticks.  Each
  tick is appended *before* it is handed to the detector (write-ahead),
  with fsyncs batched every ``fsync_every`` appends so durability costs
  one fsync per batch rather than per tick.  A torn tail (a crash mid
  ``write``) is tolerated: only complete, newline-terminated records are
  replayed.
* :class:`CheckpointStore` — atomically persisted detector checkpoints
  (write to a temp file, fsync, ``os.replace``), so a crash during
  checkpointing leaves the previous checkpoint intact.

Recovery replays the log *through the restored detector* — restore is
bit-exact and ``tick`` is deterministic, so the recovered detector is
bitwise-identical to one that never crashed, and the source is resumed
strictly after the last logged tick: zero ticks re-processed.  After a
durable checkpoint the log is truncated, keeping it bounded by the
checkpoint cadence.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

__all__ = ["CheckpointStore", "TickWAL"]

#: fsync after this many appends by default (batched durability).
DEFAULT_FSYNC_EVERY = 8

RawTick = Tuple[float, Dict[str, float], Dict[str, str]]


class TickWAL:
    """Append-only write-ahead log of raw telemetry ticks.

    Parameters
    ----------
    path:
        Log file location; created (with parents) when absent.
    fsync_every:
        Number of appends per fsync.  1 makes every tick durable
        immediately; larger values batch the cost and risk losing at
        most ``fsync_every - 1`` trailing ticks on an OS crash (a
        process crash loses nothing — the data is already in the page
        cache).
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync_every: int = DEFAULT_FSYNC_EVERY,
    ) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync_every = int(fsync_every)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._pending = 0
        #: ticks appended over this handle's lifetime.
        self.appended = 0

    # ------------------------------------------------------------------
    def append(
        self,
        time: float,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Log one raw tick (call *before* processing it)."""
        record = [
            float(time),
            {a: float(v) for a, v in numeric_row.items()},
            {a: str(v) for a, v in (categorical_row or {}).items()},
        ]
        self._fh.write(json.dumps(record) + "\n")
        self.appended += 1
        self._pending += 1
        if self._pending >= self.fsync_every:
            self.flush()

    def flush(self) -> None:
        """Flush buffered appends and fsync the log."""
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._pending = 0

    def replay(self) -> List[RawTick]:
        """All complete logged ticks, oldest first.

        A torn tail — a final line without a trailing newline, or one
        whose JSON was cut mid-record — is skipped, never raised: it is
        the expected signature of a crash mid-append.
        """
        self.flush()
        ticks: List[RawTick] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            payload = fh.read()
        for line in payload.split("\n")[:-1]:  # last element: torn tail or ""
            if not line:
                continue
            try:
                time, numeric, categorical = json.loads(line)
            except (ValueError, TypeError):
                break  # torn record: nothing after it is trustworthy
            ticks.append(
                (
                    float(time),
                    {a: float(v) for a, v in numeric.items()},
                    {a: str(v) for a, v in categorical.items()},
                )
            )
        return ticks

    def truncate(self) -> None:
        """Drop all logged ticks (call after a durable checkpoint)."""
        self._fh.flush()
        self._fh.truncate(0)
        self._fh.seek(0)
        os.fsync(self._fh.fileno())
        self._pending = 0

    def close(self) -> None:
        """Flush and release the file handle."""
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "TickWAL":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CheckpointStore:
    """Atomically persisted JSON checkpoints.

    ``save`` writes to a sibling temp file, fsyncs it, and renames over
    the target — a crash at any point leaves either the old or the new
    checkpoint fully intact, never a torn one.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def save(self, state: Mapping[str, object]) -> None:
        """Durably replace the stored checkpoint with *state*."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(state, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def load(self) -> Optional[Dict[str, object]]:
        """The stored checkpoint, or ``None`` when absent/unreadable."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None
