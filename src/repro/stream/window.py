"""Fixed-capacity ring-buffer telemetry window.

The streaming engine's working set: the most recent ``capacity`` telemetry
rows, appended one per tick by :class:`repro.engine.collector.TelemetryCollector`
(or any other per-second source).  Columns are stored in a double-write
buffer of length ``2 × capacity`` — every sample is written at its
physical slot *and* at ``slot + capacity`` — so ``timestamps`` and
``column`` are zero-copy contiguous numpy views regardless of where the
ring has wrapped.

Per-attribute min/max are maintained incrementally with monotonic deques
(:class:`repro.stream.median.SlidingExtrema`), so normalization bounds —
Equation 2's ``[min, max]`` — cost amortized O(1) per tick instead of an
O(n) scan per attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.stream.median import SlidingExtrema

__all__ = ["EvictedRow", "RingBufferWindow"]


@dataclass(frozen=True)
class EvictedRow:
    """The row pushed out of the window by an append at capacity."""

    time: float
    numeric: Dict[str, float]
    categorical: Dict[str, str]


class RingBufferWindow:
    """A sliding window of telemetry rows with O(1) append/evict.

    Parameters
    ----------
    capacity:
        Maximum number of rows retained; the oldest row is evicted once
        the window is full.
    numeric:
        Numeric attribute names, in the column order downstream consumers
        (the detector, ``to_dataset``) will see.
    categorical:
        Categorical attribute names.
    name:
        Label forwarded to :meth:`to_dataset`.
    start_seq:
        Initial value of the monotone append counter.  Checkpoint restore
        passes ``appended − n_rows`` so replayed rows keep their original
        sequence numbers (extrema expiry depends on them).
    """

    def __init__(
        self,
        capacity: int,
        numeric: Iterable[str],
        categorical: Iterable[str] = (),
        name: str = "",
        start_seq: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if start_seq < 0:
            raise ValueError("start_seq must be non-negative")
        self.capacity = int(capacity)
        self.name = name
        self._ts = np.empty(2 * self.capacity, dtype=np.float64)
        self._numeric: Dict[str, np.ndarray] = {
            attr: np.empty(2 * self.capacity, dtype=np.float64)
            for attr in numeric
        }
        self._categorical: Dict[str, np.ndarray] = {
            attr: np.empty(2 * self.capacity, dtype=object)
            for attr in categorical
        }
        if not self._numeric and not self._categorical:
            raise ValueError("window needs at least one attribute")
        self._start = 0  # physical slot of the oldest row, in [0, capacity)
        self._size = 0
        self._appended = int(start_seq)  # total rows ever appended
        self._extrema: Dict[str, SlidingExtrema] = {
            attr: SlidingExtrema() for attr in self._numeric
        }

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Rows currently in the window."""
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    @property
    def appended(self) -> int:
        """Total rows ever appended (monotone tick counter)."""
        return self._appended

    @property
    def oldest_seq(self) -> int:
        """Sequence number of the oldest retained row."""
        return self._appended - self._size

    @property
    def numeric_attributes(self):
        return list(self._numeric)

    @property
    def categorical_attributes(self):
        return list(self._categorical)

    # ------------------------------------------------------------------
    def append(
        self,
        time: float,
        numeric_row: Mapping[str, float],
        categorical_row: Optional[Mapping[str, str]] = None,
    ) -> Optional[EvictedRow]:
        """Append one row; returns the evicted row once at capacity."""
        evicted: Optional[EvictedRow] = None
        if self._size == self.capacity:
            idx = self._start
            evicted = EvictedRow(
                time=float(self._ts[idx]),
                numeric={a: float(v[idx]) for a, v in self._numeric.items()},
                categorical={
                    a: v[idx] for a, v in self._categorical.items()
                },
            )
            self._start = (self._start + 1) % self.capacity
            self._size -= 1

        slot = (self._start + self._size) % self.capacity
        self._ts[slot] = time
        self._ts[slot + self.capacity] = time
        for attr, buf in self._numeric.items():
            value = float(numeric_row[attr])
            buf[slot] = value
            buf[slot + self.capacity] = value
            self._extrema[attr].push(self._appended, value)
        row_cat = categorical_row or {}
        for attr, buf in self._categorical.items():
            value = row_cat[attr]
            buf[slot] = value
            buf[slot + self.capacity] = value
        self._size += 1
        self._appended += 1
        oldest = self._appended - self._size
        for tracker in self._extrema.values():
            tracker.expire(oldest)
        return evicted

    # ------------------------------------------------------------------
    @property
    def timestamps(self) -> np.ndarray:
        """Zero-copy view of the retained timestamps, oldest first."""
        return self._ts[self._start : self._start + self._size]

    def column(self, attr: str) -> np.ndarray:
        """Zero-copy view of one attribute column, oldest first."""
        if attr in self._numeric:
            return self._numeric[attr][self._start : self._start + self._size]
        if attr in self._categorical:
            return self._categorical[attr][
                self._start : self._start + self._size
            ]
        raise KeyError(attr)

    def bounds(self, attr: str) -> Tuple[float, float]:
        """Incrementally-tracked ``(min, max)`` of a numeric column."""
        tracker = self._extrema[attr]
        if self._size == 0:
            return 0.0, 0.0
        return tracker.min(), tracker.max()

    def to_dataset(self, name: str = "") -> Dataset:
        """Materialize the window as an immutable :class:`Dataset` copy."""
        return Dataset(
            self.timestamps.copy(),
            numeric={a: self.column(a).copy() for a in self._numeric},
            categorical={a: self.column(a).copy() for a in self._categorical},
            name=name or self.name,
        )
