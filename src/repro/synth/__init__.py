"""Synthetic data with known ground-truth causality (Appendix F)."""

from repro.synth.sem import (
    LinearCausalGraph,
    SemDataset,
    generate_domain_knowledge,
    random_linear_causal_graph,
    sem_dataset,
)

__all__ = [
    "LinearCausalGraph",
    "SemDataset",
    "random_linear_causal_graph",
    "generate_domain_knowledge",
    "sem_dataset",
]
