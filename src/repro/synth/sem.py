"""Random linear causal graphs and SEM-generated datasets (Appendix F).

Evaluating secondary-symptom pruning on real telemetry is impossible
without knowing the true causal structure, so the paper builds synthetic
datasets from random *linear causal graphs*: DAGs whose non-root variables
are linear structural equations ``V_i = Σ c_ji · V_j + ε_i`` with integer
coefficients drawn from [-10, 10] \\ {0} and standard-normal noise.

The last variable ``V_k`` is the *effect variable* (no outgoing edges, at
least one incoming).  Its root ancestors are the *root cause variables*:
they draw from N(10, 10) normally and N(100, 10) inside a contiguous
abnormal window (10 % of the series) aligned across all root causes.
Domain-knowledge rules are then sampled with root causes as cause
variables; ground truth says a rule's effect predicate *should* be pruned
iff the graph contains a path from the rule's cause to that attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.knowledge import DomainRule
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec

__all__ = [
    "LinearCausalGraph",
    "SemDataset",
    "random_linear_causal_graph",
    "generate_domain_knowledge",
    "sem_dataset",
]


def attr_name(index: int) -> str:
    """Attribute name of variable ``V_index`` (1-based, as in the paper)."""
    return f"V{index + 1}"


@dataclass
class LinearCausalGraph:
    """A DAG over ``k`` variables with linear-SEM edge coefficients.

    ``coefficients[(j, i)]`` is ``c_ji``, the effect of ``V_j`` on ``V_i``;
    variables are indexed 0..k-1 in topological order and ``k-1`` is the
    effect variable.
    """

    k: int
    coefficients: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def parents(self, i: int) -> List[int]:
        """Direct causes of variable *i*."""
        return [j for (j, t) in self.coefficients if t == i]

    def children(self, j: int) -> List[int]:
        """Direct effects of variable *j*."""
        return [t for (s, t) in self.coefficients if s == j]

    @property
    def effect_variable(self) -> int:
        """Index of the designated effect variable (always the last)."""
        return self.k - 1

    @property
    def roots(self) -> List[int]:
        """Variables with no incoming edges."""
        has_parent = {t for (_, t) in self.coefficients}
        return [i for i in range(self.k) if i not in has_parent]

    def reachable_from(self, source: int) -> Set[int]:
        """All variables reachable from *source* (excluding itself)."""
        seen: Set[int] = set()
        stack = [source]
        while stack:
            node = stack.pop()
            for child in self.children(node):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return seen

    def ancestors(self, target: int) -> Set[int]:
        """All variables with a path into *target* (excluding itself)."""
        seen: Set[int] = set()
        stack = [target]
        while stack:
            node = stack.pop()
            for parent in self.parents(node):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return seen

    @property
    def root_causes(self) -> List[int]:
        """Root variables that are ancestors of the effect variable."""
        upstream = self.ancestors(self.effect_variable)
        return sorted(set(self.roots) & upstream)

    def has_path(self, source: int, target: int) -> bool:
        """True when the DAG contains a directed path source → target."""
        return target in self.reachable_from(source)


def random_linear_causal_graph(
    k: int = 7,
    edge_probability: float = 0.4,
    rng: Optional[np.random.Generator] = None,
) -> LinearCausalGraph:
    """Sample a random linear causal graph with a valid effect variable.

    Edges only go from lower to higher topological index (guaranteeing
    acyclicity); the last variable receives at least one incoming edge and,
    by construction, has no outgoing ones.  Coefficients are non-zero
    integers in [-10, 10].
    """
    if k < 2:
        raise ValueError("need at least two variables")
    rng = rng or np.random.default_rng()
    graph = LinearCausalGraph(k=k)

    def draw_coefficient() -> float:
        value = 0
        while value == 0:
            value = int(rng.integers(-10, 11))
        return float(value)

    for i in range(k):
        for j in range(i + 1, k):
            if rng.random() < edge_probability:
                graph.coefficients[(i, j)] = draw_coefficient()
    # the effect variable must have at least one incoming edge
    if not graph.parents(k - 1):
        parent = int(rng.integers(0, k - 1))
        graph.coefficients[(parent, k - 1)] = draw_coefficient()
    # and at least one *root* must reach it, so an anomaly exists
    if not graph.root_causes:
        root = graph.roots[0]
        graph.coefficients[(root, k - 1)] = draw_coefficient()
    return graph


@dataclass
class SemDataset:
    """A SEM-generated dataset with its ground truth."""

    graph: LinearCausalGraph
    dataset: Dataset
    spec: RegionSpec
    rules: List[DomainRule]
    should_prune: FrozenSet[str]
    should_keep: FrozenSet[str]


def generate_domain_knowledge(
    graph: LinearCausalGraph,
    rng: np.random.Generator,
    rules_per_cause: int = 2,
) -> List[DomainRule]:
    """Sample domain rules with root causes as cause variables.

    Effect attributes are drawn from the remaining variables; the pair
    conditions of Section 5 hold by construction (rules never invert
    because causes are always roots).
    """
    rules: List[DomainRule] = []
    seen: Set[Tuple[str, str]] = set()
    for cause in graph.root_causes:
        others = [i for i in range(graph.k) if i != cause and i not in graph.roots]
        if not others:
            continue
        take = min(rules_per_cause, len(others))
        targets = rng.choice(np.asarray(others), size=take, replace=False)
        for target in targets:
            pair = (attr_name(cause), attr_name(int(target)))
            if pair in seen or (pair[1], pair[0]) in seen:
                continue
            seen.add(pair)
            rules.append(DomainRule(pair[0], pair[1]))
    return rules


def sem_dataset(
    k: int = 7,
    n_rows: int = 600,
    abnormal_fraction: float = 0.10,
    edge_probability: float = 0.4,
    rules_per_cause: int = 2,
    seed: Optional[int] = None,
) -> SemDataset:
    """Generate one Appendix F trial: graph, data, rules, and ground truth."""
    rng = np.random.default_rng(seed)
    graph = random_linear_causal_graph(k, edge_probability, rng)

    n_abnormal = max(int(round(n_rows * abnormal_fraction)), 1)
    start = int(rng.integers(0, n_rows - n_abnormal + 1))
    abnormal_slice = slice(start, start + n_abnormal)

    values = np.zeros((n_rows, k))
    root_causes = set(graph.root_causes)
    for i in range(k):
        parents = graph.parents(i)
        if not parents:
            column = rng.normal(10.0, 10.0, size=n_rows)
            if i in root_causes:
                column[abnormal_slice] = rng.normal(100.0, 10.0, size=n_abnormal)
            values[:, i] = column
        else:
            noise = rng.normal(0.0, 1.0, size=n_rows)
            total = noise
            for j in parents:
                total = total + graph.coefficients[(j, i)] * values[:, j]
            values[:, i] = total

    timestamps = np.arange(n_rows, dtype=float)
    dataset = Dataset(
        timestamps,
        numeric={attr_name(i): values[:, i] for i in range(k)},
        name=f"sem-k{k}",
    )
    spec = RegionSpec(
        abnormal=[Region(float(start), float(start + n_abnormal - 1))],
        normal=None,
    )

    rules = generate_domain_knowledge(graph, rng, rules_per_cause)
    prune: Set[str] = set()
    keep: Set[str] = set()
    name_to_index = {attr_name(i): i for i in range(k)}
    for rule in rules:
        cause_idx = name_to_index[rule.cause_attr]
        effect_idx = name_to_index[rule.effect_attr]
        if graph.has_path(cause_idx, effect_idx):
            prune.add(rule.effect_attr)
        else:
            keep.add(rule.effect_attr)
    # an attribute reachable from one rule's cause but not another's stays prunable
    keep -= prune
    return SemDataset(
        graph=graph,
        dataset=dataset,
        spec=spec,
        rules=rules,
        should_prune=frozenset(prune),
        should_keep=frozenset(keep),
    )
