"""Terminal visualisation: the text analogue of DBSherlock's GUI.

The paper's component (3) is a graphical plot of performance metrics with
user-selectable regions (Figure 3) and the partition-space diagrams of
Figure 4.  Offline and headless, we render the same artefacts as ASCII:
time-series plots with region overlays, compact sparklines, partition
label strips, and a full incident report.
"""

from repro.viz.ascii import (
    incident_report,
    partition_strip,
    plot_series,
    sparkline,
)

__all__ = ["sparkline", "plot_series", "partition_strip", "incident_report"]
