"""ASCII rendering of telemetry, regions, and partition spaces.

Everything returns plain strings (no terminal escapes) so output is safe
to log, diff, and assert on in tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.generator import AttributeArtifacts
from repro.core.partition import Label
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec

__all__ = ["sparkline", "plot_series", "partition_strip", "incident_report"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"
_LABEL_CHARS = {
    int(Label.EMPTY): "·",
    int(Label.NORMAL): "N",
    int(Label.ABNORMAL): "A",
}


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line unicode sparkline of a series.

    ``width`` resamples the series to that many characters (mean pooling);
    constant series render as a flat low line.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    if width is not None and width > 0 and values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.asarray(
            [values[a:b].mean() for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[0] * values.size
    idx = ((values - lo) / span * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def plot_series(
    dataset: Dataset,
    attr: str,
    spec: Optional[RegionSpec] = None,
    width: int = 78,
    height: int = 10,
) -> str:
    """A height×width ASCII plot of one attribute over time.

    Abnormal regions (when *spec* is given) are marked with ``#`` in a
    footer strip, mirroring the shaded selection of the paper's GUI.
    """
    values = np.asarray(dataset.column(attr), dtype=np.float64)
    n = values.size
    if n == 0:
        return "(empty series)"
    width = min(width, n) if n < width else width
    edges = np.linspace(0, n, width + 1).astype(int)
    pooled = np.asarray(
        [values[a:b].mean() if b > a else values[min(a, n - 1)]
         for a, b in zip(edges[:-1], edges[1:])]
    )
    lo, hi = float(pooled.min()), float(pooled.max())
    span = hi - lo if hi > lo else 1.0
    rows = np.clip(
        ((pooled - lo) / span * (height - 1)).round().astype(int), 0, height - 1
    )
    grid = [[" "] * width for _ in range(height)]
    for x, r in enumerate(rows):
        grid[height - 1 - r][x] = "*"

    lines = [f"{attr}  (min {lo:.3g}, max {hi:.3g})"]
    for i, row in enumerate(grid):
        label = f"{hi:>9.3g} |" if i == 0 else (
            f"{lo:>9.3g} |" if i == height - 1 else " " * 10 + "|"
        )
        lines.append(label + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)

    if spec is not None:
        mask = spec.abnormal_mask(dataset)
        pooled_mask = [
            mask[a:b].any() if b > a else bool(mask[min(a, n - 1)])
            for a, b in zip(edges[:-1], edges[1:])
        ]
        strip = "".join("#" if m else " " for m in pooled_mask)
        lines.append(" " * 10 + " " + strip + "  (# = abnormal)")
    return "\n".join(lines)


def partition_strip(
    artifacts: AttributeArtifacts, stage: str = "filled", width: int = 78
) -> str:
    """Figure 4-style strip of a partition space's labels.

    ``stage`` selects the pipeline step: ``initial``, ``filtered``, or
    ``filled``.  Each character is one partition: ``N`` normal, ``A``
    abnormal, ``·`` empty; long spaces are resampled by majority.
    """
    labels = {
        "initial": artifacts.labels_initial,
        "filtered": artifacts.labels_filtered,
        "filled": artifacts.labels_filled,
    }.get(stage)
    if labels is None:
        return f"{artifacts.attr}: (stage {stage!r} not available)"
    labels = np.asarray(labels)
    n = labels.size
    if n > width:
        edges = np.linspace(0, n, width + 1).astype(int)
        pooled = []
        for a, b in zip(edges[:-1], edges[1:]):
            chunk = labels[a:b] if b > a else labels[[min(a, n - 1)]]
            # abnormal wins over normal wins over empty for visibility
            if (chunk == int(Label.ABNORMAL)).any():
                pooled.append(int(Label.ABNORMAL))
            elif (chunk == int(Label.NORMAL)).any():
                pooled.append(int(Label.NORMAL))
            else:
                pooled.append(int(Label.EMPTY))
        labels = np.asarray(pooled)
    strip = "".join(_LABEL_CHARS[int(l)] for l in labels)
    return f"{artifacts.attr} [{stage}]: {strip}"


def incident_report(
    dataset: Dataset,
    spec: RegionSpec,
    explanation,
    plot_attr: str = "txn.avg_latency_ms",
    max_predicates: int = 12,
) -> str:
    """A self-contained text post-mortem: plot, regions, predicates, causes."""
    lines: List[str] = [f"Incident report — {dataset.name or 'unnamed run'}"]
    lines.append("=" * max(len(lines[0]), 20))
    for region in spec.abnormal:
        lines.append(
            f"abnormal region: t = {region.start:g} .. {region.end:g} "
            f"({region.duration + 1:g} s)"
        )
    if plot_attr in dataset:
        lines.append("")
        lines.append(plot_series(dataset, plot_attr, spec))
    lines.append("")
    predicates = list(explanation.predicates)
    lines.append(f"explanatory predicates ({len(predicates)}):")
    for predicate in predicates[:max_predicates]:
        lines.append(f"  {predicate}")
    if len(predicates) > max_predicates:
        lines.append(f"  ... and {len(predicates) - max_predicates} more")
    if explanation.pruned:
        lines.append("pruned as secondary symptoms:")
        for predicate in explanation.pruned:
            lines.append(f"  {predicate}")
    if explanation.causes:
        lines.append("likely causes:")
        for cause, confidence in explanation.causes:
            lines.append(f"  {cause}: {confidence:.1%}")
    else:
        lines.append("likely causes: (no causal model above threshold)")
    return "\n".join(lines)
