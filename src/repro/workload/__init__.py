"""OLTP workload models: transaction mixes and client (terminal) pools.

Substitute for the paper's OLTPBenchmark drivers: we model TPC-C and TPC-E
as weighted mixes of transaction types with per-type resource demands
(CPU, logical/physical reads, writes, lock footprint, network payload)
rather than executing SQL — the diagnosis algorithms only ever see the
aggregate telemetry.
"""

from repro.workload.spec import TransactionType, WorkloadSpec
from repro.workload.tpcc import tpcc_workload
from repro.workload.tpce import tpce_workload
from repro.workload.client import TerminalPool

__all__ = [
    "TransactionType",
    "WorkloadSpec",
    "tpcc_workload",
    "tpce_workload",
    "TerminalPool",
]
