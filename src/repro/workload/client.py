"""Closed-loop client (terminal) pool.

OLTPBenchmark drives the database with a fixed number of terminals, each
submitting its next transaction after receiving the previous response plus
a think time.  The offered rate is therefore self-limiting: when latency
grows, terminals spend more time waiting and submit less — the mechanism
behind the paper's observation that Network Congestion *masks* a
simultaneous Workload Spike (Section 8.7).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TerminalPool"]


@dataclass
class TerminalPool:
    """A fixed population of closed-loop clients.

    Attributes
    ----------
    n_terminals:
        Number of concurrent client terminals.
    think_time_s:
        Delay between receiving a response and submitting the next request.
    target_rate:
        Open-arrival cap (transactions per second): terminals never submit
        faster than this even when the server is idle.
    """

    n_terminals: int
    think_time_s: float
    target_rate: float

    def offered_tps(self, latency_s: float) -> float:
        """Transactions per second the pool submits at a given latency.

        Little's law for a closed system: each terminal completes one
        request every ``latency + think_time`` seconds, capped by the
        configured open-arrival target rate.
        """
        latency_s = max(latency_s, 0.0)
        cycle = latency_s + max(self.think_time_s, 1e-6)
        closed_loop_rate = self.n_terminals / cycle
        return min(closed_loop_rate, self.target_rate)

    def concurrency(self, latency_s: float) -> float:
        """Average number of in-flight transactions (server-side threads)."""
        return self.offered_tps(latency_s) * max(latency_s, 0.0)
