"""Transaction-type and workload-mix specifications.

Each :class:`TransactionType` carries the per-execution resource demands
the engine's resource models consume.  A :class:`WorkloadSpec` is a
weighted mix of types plus scale parameters (warehouses/customers,
terminals, target rate) mirroring the paper's OLTPBenchmark settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["TransactionType", "WorkloadSpec"]


@dataclass(frozen=True)
class TransactionType:
    """Resource demands of one transaction class.

    Attributes
    ----------
    name:
        Transaction name (e.g. ``"NewOrder"``).
    weight:
        Relative frequency in the mix.
    cpu_ms:
        CPU service demand per execution, in milliseconds.
    logical_reads:
        Rows touched per execution (drives ``handler_read`` counters).
    write_rows:
        Rows inserted/updated/deleted per execution (drives dirty pages,
        redo log traffic).
    lock_rows:
        Rows locked per execution (drives the contention model).
    net_in_bytes / net_out_bytes:
        Request/response payload per execution.
    read_only:
        True for transactions issuing no writes.
    insert_fraction / update_fraction / delete_fraction:
        How ``write_rows`` splits across DML verbs (must sum to ≤ 1; the
        remainder counts as updates).
    """

    name: str
    weight: float
    cpu_ms: float
    logical_reads: float
    write_rows: float = 0.0
    lock_rows: float = 0.0
    net_in_bytes: float = 256.0
    net_out_bytes: float = 1024.0
    read_only: bool = False
    insert_fraction: float = 0.0
    update_fraction: float = 1.0
    delete_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"{self.name}: weight must be non-negative")
        fractions = self.insert_fraction + self.update_fraction + self.delete_fraction
        if fractions > 1.0 + 1e-9:
            raise ValueError(f"{self.name}: DML fractions exceed 1")


@dataclass
class WorkloadSpec:
    """A weighted transaction mix with scale parameters.

    Attributes
    ----------
    name:
        Workload label (``"tpcc"``, ``"tpce"``).
    types:
        The transaction classes of the mix.
    scale_factor:
        Warehouses (TPC-C) or customers/1000 (TPC-E); sizes the working
        set relative to the buffer pool.
    n_terminals:
        Closed-loop client count (the paper's default: 128).
    base_tps:
        Open-arrival target rate before closed-loop limiting.
    think_time_s:
        Per-terminal think time between transactions.
    hot_fraction:
        Fraction of the lock-key space that is hot (1.0 = uniform access;
        smaller = more contention).  The Lock Contention anomaly shrinks it.
    """

    name: str
    types: List[TransactionType]
    scale_factor: float = 500.0
    n_terminals: int = 128
    base_tps: float = 900.0
    think_time_s: float = 0.05
    hot_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.types:
            raise ValueError("workload needs at least one transaction type")
        total = sum(t.weight for t in self.types)
        if total <= 0:
            raise ValueError("total transaction weight must be positive")

    @property
    def weights(self) -> np.ndarray:
        """Normalized mix weights, aligned with :attr:`types`."""
        w = np.asarray([t.weight for t in self.types], dtype=np.float64)
        return w / w.sum()

    @property
    def type_names(self) -> List[str]:
        """Transaction names, in mix order."""
        return [t.name for t in self.types]

    def mix_average(self, attribute: str) -> float:
        """Mix-weighted mean of a per-type numeric attribute."""
        weights = self.weights
        values = np.asarray(
            [float(getattr(t, attribute)) for t in self.types], dtype=np.float64
        )
        return float((weights * values).sum())

    @property
    def read_fraction(self) -> float:
        """Weighted fraction of read-only transactions in the mix."""
        weights = self.weights
        return float(
            sum(w for w, t in zip(weights, self.types) if t.read_only)
        )

    def with_overrides(self, **kwargs) -> "WorkloadSpec":
        """Copy with scale/terminal/rate fields overridden."""
        values = dict(
            name=self.name,
            types=list(self.types),
            scale_factor=self.scale_factor,
            n_terminals=self.n_terminals,
            base_tps=self.base_tps,
            think_time_s=self.think_time_s,
            hot_fraction=self.hot_fraction,
        )
        values.update(kwargs)
        return WorkloadSpec(**values)
