"""TPC-C transaction mix model.

The canonical TPC-C mix (NewOrder 45 %, Payment 43 %, OrderStatus 4 %,
Delivery 4 %, StockLevel 4 %) with per-type resource demands sized so
that, at the paper's default scale (500 warehouses, 128 terminals), the
simulated server runs at moderate utilisation with headroom that the
anomaly injectors can consume.
"""

from __future__ import annotations

from repro.workload.spec import TransactionType, WorkloadSpec

__all__ = ["tpcc_workload", "TPCC_TYPES"]

TPCC_TYPES = [
    TransactionType(
        name="NewOrder",
        weight=45.0,
        cpu_ms=0.55,
        logical_reads=46.0,
        write_rows=12.0,
        lock_rows=11.0,
        net_in_bytes=640.0,
        net_out_bytes=900.0,
        insert_fraction=0.7,
        update_fraction=0.3,
    ),
    TransactionType(
        name="Payment",
        weight=43.0,
        cpu_ms=0.25,
        logical_reads=7.0,
        write_rows=4.0,
        lock_rows=4.0,
        net_in_bytes=320.0,
        net_out_bytes=420.0,
        insert_fraction=0.25,
        update_fraction=0.75,
    ),
    TransactionType(
        name="OrderStatus",
        weight=4.0,
        cpu_ms=0.30,
        logical_reads=55.0,
        read_only=True,
        net_in_bytes=256.0,
        net_out_bytes=1400.0,
        update_fraction=0.0,
    ),
    TransactionType(
        name="Delivery",
        weight=4.0,
        cpu_ms=0.90,
        logical_reads=130.0,
        write_rows=30.0,
        lock_rows=24.0,
        net_in_bytes=256.0,
        net_out_bytes=300.0,
        update_fraction=0.8,
        delete_fraction=0.2,
    ),
    TransactionType(
        name="StockLevel",
        weight=4.0,
        cpu_ms=0.80,
        logical_reads=380.0,
        read_only=True,
        net_in_bytes=256.0,
        net_out_bytes=500.0,
        update_fraction=0.0,
    ),
]


def tpcc_workload(
    scale_factor: float = 500.0,
    n_terminals: int = 128,
    base_tps: float = 900.0,
) -> WorkloadSpec:
    """The paper's default TPC-C setting (scale 500 ≈ 50 GB, 128 terminals)."""
    return WorkloadSpec(
        name="tpcc",
        types=list(TPCC_TYPES),
        scale_factor=scale_factor,
        n_terminals=n_terminals,
        base_tps=base_tps,
        think_time_s=0.05,
        hot_fraction=1.0,
    )
