"""TPC-E transaction mix model.

TPC-E is substantially more read-intensive than TPC-C (Chen et al., SIGMOD
Record 2011) — roughly 77 % of its mix is read-only.  The paper's
Appendix A observes that this makes 'Poor Physical Design' and 'Lock
Contention' less pronounced under TPC-E; our mix preserves exactly that
property because both injectors act on the (small) write/lock surface.
"""

from __future__ import annotations

from repro.workload.spec import TransactionType, WorkloadSpec

__all__ = ["tpce_workload", "TPCE_TYPES"]

TPCE_TYPES = [
    TransactionType(
        name="TradeOrder",
        weight=10.1,
        cpu_ms=0.85,
        logical_reads=60.0,
        write_rows=9.0,
        lock_rows=7.0,
        net_in_bytes=900.0,
        net_out_bytes=700.0,
        insert_fraction=0.8,
        update_fraction=0.2,
    ),
    TransactionType(
        name="TradeResult",
        weight=10.0,
        cpu_ms=1.00,
        logical_reads=80.0,
        write_rows=12.0,
        lock_rows=9.0,
        net_in_bytes=500.0,
        net_out_bytes=600.0,
        insert_fraction=0.5,
        update_fraction=0.5,
    ),
    TransactionType(
        name="TradeLookup",
        weight=8.0,
        cpu_ms=1.30,
        logical_reads=300.0,
        read_only=True,
        net_out_bytes=4200.0,
        update_fraction=0.0,
    ),
    TransactionType(
        name="TradeStatus",
        weight=19.0,
        cpu_ms=0.35,
        logical_reads=50.0,
        read_only=True,
        net_out_bytes=1800.0,
        update_fraction=0.0,
    ),
    TransactionType(
        name="CustomerPosition",
        weight=13.0,
        cpu_ms=0.60,
        logical_reads=110.0,
        read_only=True,
        net_out_bytes=2600.0,
        update_fraction=0.0,
    ),
    TransactionType(
        name="BrokerVolume",
        weight=4.9,
        cpu_ms=0.80,
        logical_reads=180.0,
        read_only=True,
        net_out_bytes=900.0,
        update_fraction=0.0,
    ),
    TransactionType(
        name="SecurityDetail",
        weight=14.0,
        cpu_ms=0.45,
        logical_reads=70.0,
        read_only=True,
        net_out_bytes=3100.0,
        update_fraction=0.0,
    ),
    TransactionType(
        name="MarketFeed",
        weight=1.0,
        cpu_ms=0.70,
        logical_reads=40.0,
        write_rows=18.0,
        lock_rows=10.0,
        net_in_bytes=1400.0,
        net_out_bytes=200.0,
        update_fraction=1.0,
    ),
    TransactionType(
        name="MarketWatch",
        weight=18.0,
        cpu_ms=0.50,
        logical_reads=130.0,
        read_only=True,
        net_out_bytes=1500.0,
        update_fraction=0.0,
    ),
    TransactionType(
        name="TradeUpdate",
        weight=2.0,
        cpu_ms=1.20,
        logical_reads=250.0,
        write_rows=6.0,
        lock_rows=5.0,
        net_out_bytes=3000.0,
        update_fraction=1.0,
    ),
]


def tpce_workload(
    customers: int = 3000,
    n_terminals: int = 128,
    base_tps: float = 700.0,
) -> WorkloadSpec:
    """The paper's Appendix A TPC-E setting (3 000 customers ≈ 50 GB)."""
    return WorkloadSpec(
        name="tpce",
        types=list(TPCE_TYPES),
        scale_factor=customers / 6.0,  # comparable working-set scale to TPC-C 500
        n_terminals=n_terminals,
        base_tps=base_tps,
        think_time_s=0.05,
        hot_fraction=1.0,
    )
