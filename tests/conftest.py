"""Shared fixtures.

Simulated telemetry runs are expensive (a couple of seconds each), so the
handful of runs the integration-style tests share are session-scoped and
deterministic (fixed seeds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec
from repro.eval.harness import simulate_run


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def step_dataset():
    """A small hand-built dataset with a clean step anomaly.

    Rows 60..89 are abnormal: ``metric_a`` jumps from ~10 to ~50, while
    ``metric_b`` stays flat and ``mode`` flips category.
    """
    rng = np.random.default_rng(7)
    n = 120
    timestamps = np.arange(n, dtype=float)
    metric_a = 10.0 + rng.normal(0, 0.5, n)
    metric_a[60:90] = 50.0 + rng.normal(0, 0.5, 30)
    metric_b = 5.0 + rng.normal(0, 0.2, n)
    mode = np.asarray(["steady"] * n, dtype=object)
    mode[60:90] = "burst"
    return Dataset(
        timestamps,
        numeric={"metric_a": metric_a, "metric_b": metric_b},
        categorical={"mode": mode},
        name="step",
    )


@pytest.fixture()
def step_spec():
    return RegionSpec(abnormal=[Region(60.0, 89.0)], normal=None)


@pytest.fixture(scope="session")
def cpu_run():
    """One simulated CPU-saturation incident (dataset, spec, cause)."""
    return simulate_run("cpu_saturation", duration_s=40, seed=7)


@pytest.fixture(scope="session")
def network_run():
    """One simulated network-congestion incident."""
    return simulate_run("network_congestion", duration_s=40, seed=8)


@pytest.fixture(scope="session")
def lock_run():
    """One simulated lock-contention incident."""
    return simulate_run("lock_contention", duration_s=40, seed=9)
