"""Unit tests for automatic remediation (the Section 10 future work)."""

import numpy as np
import pytest

from repro.actions.base import RemediationAction
from repro.actions.journal import ActionJournal, ActionRecord
from repro.actions.library import (
    DEFAULT_POLICY_TABLE,
    DeferBackup,
    DropUnusedIndex,
    EnableAdaptiveFlushing,
    KillRogueQuery,
    PauseBulkLoad,
    RerouteNetwork,
    SpreadHotKeys,
    StopExternalProcesses,
    ThrottleWorkload,
)
from repro.actions.policy import AutoRemediator, RemediationPolicy
from repro.anomalies.library import ANOMALY_CAUSES, make_anomaly
from repro.core.causal import CausalModel, CausalModelStore
from repro.core.predicates import NumericPredicate
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec
from repro.engine.server import TickModifiers


def rng():
    return np.random.default_rng(0)


class TestActionTransforms:
    def test_throttle_caps_spike(self):
        mods = TickModifiers(tps_multiplier=5.0, added_terminals=128)
        out = ThrottleWorkload(cap_multiplier=1.2).transform(mods)
        assert out.tps_multiplier == 1.2
        assert out.added_terminals == 0

    def test_throttle_leaves_normal_load_alone(self):
        out = ThrottleWorkload().transform(TickModifiers())
        assert out.tps_multiplier == 1.0

    def test_kill_rogue_query_zeroes_scans(self):
        mods = TickModifiers(scan_cpu_cores=1.6, scan_rows_per_s=2.5e6)
        out = KillRogueQuery().transform(mods)
        assert out.scan_cpu_cores == 0.0 and out.scan_rows_per_s == 0.0

    def test_defer_backup(self):
        mods = TickModifiers(dump_read_mb=85.0, dump_net_mb=30.0)
        out = DeferBackup().transform(mods)
        assert out.dump_read_mb == 0.0 and out.dump_net_mb == 0.0

    def test_pause_bulk_load_trickles(self):
        mods = TickModifiers(bulk_insert_rows=20000.0)
        out = PauseBulkLoad(trickle_fraction=0.05).transform(mods)
        assert out.bulk_insert_rows == pytest.approx(1000.0)

    def test_stop_external_processes(self):
        mods = TickModifiers(external_cpu_cores=3.8, external_disk_ops=2300.0)
        out = StopExternalProcesses().transform(mods)
        assert out.external_cpu_cores == 0.0 and out.external_disk_ops == 0.0

    def test_spread_hot_keys(self):
        mods = TickModifiers(hot_fraction_override=2e-6)
        assert SpreadHotKeys().transform(mods).hot_fraction_override is None

    def test_adaptive_flushing_damps(self):
        mods = TickModifiers(flush_pages=3000.0)
        out = EnableAdaptiveFlushing(damping=0.1).transform(mods)
        assert out.flush_pages == pytest.approx(300.0)

    def test_reroute_network(self):
        mods = TickModifiers(network_delay_ms=300.0)
        out = RerouteNetwork(residual_delay_ms=5.0).transform(mods)
        assert out.network_delay_ms == 5.0

    def test_drop_unused_index(self):
        mods = TickModifiers(write_amplification=4.5)
        assert DropUnusedIndex().transform(mods).write_amplification == 1.0

    def test_actions_preserve_unrelated_fields(self):
        mods = TickModifiers(network_delay_ms=300.0, external_cpu_cores=2.0)
        out = KillRogueQuery().transform(mods)
        assert out.network_delay_ms == 300.0
        assert out.external_cpu_cores == 2.0

    def test_every_table1_cause_has_an_action(self):
        covered = set(DEFAULT_POLICY_TABLE)
        causes = {make_anomaly(k).cause for k in ANOMALY_CAUSES}
        assert causes <= covered

    def test_action_neutralises_its_target_cause(self):
        """Each runbook action cancels its target injector's perturbation."""
        neutral = TickModifiers()
        for key in ANOMALY_CAUSES:
            injector = make_anomaly(key, intensity=1.0)
            cause = injector.cause
            action = DEFAULT_POLICY_TABLE[cause]()
            mods = injector.modifiers(0.0, rng())
            out = action.transform(mods)
            # the remediated modifiers must be materially closer to neutral
            # on the injector's primary pathway (spot-check key fields)
            assert out != mods or mods == neutral, cause


class TestJournal:
    def record(self, cause="C", action="a", before=100.0, after=10.0):
        return ActionRecord(
            cause=cause,
            action_name=action,
            applied_at=50.0,
            latency_before_ms=before,
            latency_after_ms=after,
        )

    def test_improvement(self):
        assert self.record().improvement == pytest.approx(0.9)

    def test_negative_improvement(self):
        assert self.record(before=10.0, after=20.0).improvement < 0

    def test_success_threshold(self):
        assert self.record(before=100.0, after=70.0).succeeded
        assert not self.record(before=100.0, after=90.0).succeeded

    def test_suggest_best_action(self):
        journal = ActionJournal()
        journal.record(self.record(action="weak", before=100, after=80))
        journal.record(self.record(action="strong", before=100, after=10))
        assert journal.suggest("C") == "strong"

    def test_suggest_unknown_cause(self):
        assert ActionJournal().suggest("never seen") is None

    def test_success_rate(self):
        journal = ActionJournal()
        journal.record(self.record(after=10.0))
        journal.record(self.record(after=95.0))
        assert journal.success_rate("C") == 0.5

    def test_len_and_iter(self):
        journal = ActionJournal()
        journal.record(self.record())
        assert len(journal) == 1
        assert list(journal)[0].cause == "C"


class TestPolicyAndRemediator:
    def dataset(self):
        values = np.asarray([10.0] * 60 + [50.0] * 30 + [10.0] * 30)
        return (
            Dataset(np.arange(120, dtype=float), numeric={"m": values}),
            RegionSpec(abnormal=[Region(60.0, 89.0)]),
        )

    def store(self):
        store = CausalModelStore()
        store.add(
            CausalModel("Workload Spike", [NumericPredicate("m", lower=30.0)])
        )
        store.add(
            CausalModel("Network Congestion", [NumericPredicate("m", upper=30.0)])
        )
        return store

    def test_policy_lookup(self):
        policy = RemediationPolicy()
        action = policy.action_for("Workload Spike")
        assert isinstance(action, ThrottleWorkload)

    def test_policy_unknown_cause(self):
        assert RemediationPolicy().action_for("Alien Invasion") is None

    def test_remediator_fires_on_confident_diagnosis(self):
        ds, spec = self.dataset()
        remediator = AutoRemediator(self.store(), confidence_threshold=0.6)
        cause, action, confidence = remediator.decide(ds, spec)
        assert cause == "Workload Spike"
        assert isinstance(action, ThrottleWorkload)
        assert confidence > 0.6

    def test_remediator_holds_below_threshold(self):
        ds, spec = self.dataset()
        remediator = AutoRemediator(self.store(), confidence_threshold=1.01)
        cause, action, confidence = remediator.decide(ds, spec)
        assert cause is None and action is None

    def test_remediator_empty_store(self):
        ds, spec = self.dataset()
        remediator = AutoRemediator(CausalModelStore())
        assert remediator.decide(ds, spec) == (None, None, 0.0)

    def test_journal_suggestion_preferred(self):
        ds, spec = self.dataset()
        journal = ActionJournal()
        journal.record(
            ActionRecord(
                cause="Workload Spike",
                action_name="stop external processes",
                applied_at=0.0,
                latency_before_ms=100.0,
                latency_after_ms=5.0,
            )
        )
        remediator = AutoRemediator(
            self.store(), journal=journal, confidence_threshold=0.6
        )
        _, action, _ = remediator.decide(ds, spec)
        assert isinstance(action, StopExternalProcesses)
