"""Unit tests for the anomaly injector library (Table 1) and scheduling."""

import numpy as np
import pytest

from repro.anomalies.base import ScheduledAnomaly, ground_truth_spec
from repro.anomalies.library import (
    ANOMALY_CAUSES,
    CompoundAnomaly,
    FlushLogTable,
    NetworkCongestion,
    WorkloadSpike,
    make_anomaly,
)
from repro.engine.server import TickModifiers


def rng():
    return np.random.default_rng(0)


class TestRegistry:
    def test_ten_causes(self):
        # Table 1 defines exactly ten anomaly classes
        assert len(ANOMALY_CAUSES) == 10

    def test_make_every_cause(self):
        for key in ANOMALY_CAUSES:
            injector = make_anomaly(key)
            assert injector.cause
            mods = injector.modifiers(0.0, rng())
            assert isinstance(mods, TickModifiers)

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            make_anomaly("disk_melted")

    def test_causes_are_distinct(self):
        causes = [make_anomaly(k).cause for k in ANOMALY_CAUSES]
        assert len(set(causes)) == 10

    def test_kwargs_forwarded(self):
        injector = make_anomaly("network_congestion", delay_ms=150.0)
        assert injector.delay_ms == 150.0


class TestInjectorSignatures:
    def test_each_cause_perturbs_something(self):
        identity = TickModifiers()
        for key in ANOMALY_CAUSES:
            mods = make_anomaly(key).modifiers(0.0, rng())
            assert mods != identity, key

    def test_signatures_differ_pairwise(self):
        """No two causes may produce identical modifier patterns."""

        def shape(mods):
            return tuple(
                field_value != default_value
                for field_value, default_value in zip(
                    mods.__dict__.values(), TickModifiers().__dict__.values()
                )
            )

        shapes = {}
        for key in ANOMALY_CAUSES:
            shapes[key] = shape(make_anomaly(key).modifiers(0.0, rng()))
        values = list(shapes.values())
        assert len(set(values)) == len(values), shapes

    def test_flush_storm_is_bursty(self):
        injector = FlushLogTable(period_s=4)
        r = rng()
        burst = injector.modifiers(0.0, r).flush_pages
        quiet = injector.modifiers(2.0, r).flush_pages
        assert burst > quiet * 3

    def test_network_congestion_delay_scale(self):
        mods = NetworkCongestion(delay_ms=300.0).modifiers(0.0, rng())
        assert 250.0 < mods.network_delay_ms < 350.0


class TestScheduling:
    def test_active_window(self):
        sched = ScheduledAnomaly(WorkloadSpike(), 60.0, 100.0)
        assert not sched.active(59.0)
        assert sched.active(60.0)
        assert sched.active(99.0)
        assert not sched.active(100.0)

    def test_inactive_returns_identity(self):
        sched = ScheduledAnomaly(WorkloadSpike(), 60.0, 100.0)
        assert sched.modifiers(0.0, rng()) == TickModifiers()

    def test_active_returns_injector_modifiers(self):
        sched = ScheduledAnomaly(WorkloadSpike(), 60.0, 100.0)
        assert sched.modifiers(70.0, rng()).tps_multiplier > 1.0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            ScheduledAnomaly(WorkloadSpike(), 100.0, 100.0)

    def test_ground_truth_region(self):
        sched = ScheduledAnomaly(WorkloadSpike(), 60.0, 100.0)
        region = sched.ground_truth_region()
        assert (region.start, region.end) == (60.0, 99.0)

    def test_ground_truth_spec_multiple(self):
        spec = ground_truth_spec([
            ScheduledAnomaly(WorkloadSpike(), 10.0, 20.0),
            ScheduledAnomaly(NetworkCongestion(), 50.0, 60.0),
        ])
        assert len(spec.abnormal) == 2


class TestCompound:
    def test_combines_modifiers(self):
        compound = CompoundAnomaly(
            [make_anomaly("cpu_saturation"), make_anomaly("io_saturation")]
        )
        mods = compound.modifiers(0.0, rng())
        assert mods.external_cpu_cores > 0
        assert mods.external_disk_ops > 0

    def test_cause_label_joins(self):
        compound = CompoundAnomaly(
            [make_anomaly("cpu_saturation"), make_anomaly("io_saturation")]
        )
        assert compound.cause == "CPU Saturation + I/O Saturation"
        assert compound.causes == ["CPU Saturation", "I/O Saturation"]

    def test_empty_compound_rejected(self):
        with pytest.raises(ValueError):
            CompoundAnomaly([])

    def test_three_way_compound(self):
        compound = CompoundAnomaly([
            make_anomaly("cpu_saturation"),
            make_anomaly("io_saturation"),
            make_anomaly("network_congestion"),
        ])
        mods = compound.modifiers(0.0, rng())
        assert mods.network_delay_ms > 0
