"""Unit tests for automatic anomaly detection (Section 7)."""

import numpy as np
import pytest

from repro.core.anomaly import (
    AnomalyDetector,
    mask_to_regions,
    potential_power,
)
from repro.core.separation import normalize_values
from repro.data.dataset import Dataset
from repro.perf.batch import potential_power_batch


def step_series(n=200, start=100, width=40, lo=0.0, hi=1.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    values = np.full(n, lo) + rng.normal(0, noise, n)
    values[start : start + width] = hi + rng.normal(0, noise, width)
    return values


class TestPotentialPower:
    def test_flat_series_zero_power(self):
        assert potential_power(np.zeros(100)) == 0.0

    def test_step_has_high_power(self):
        values = normalize_values(step_series())
        assert potential_power(values, window=20) > 0.9

    def test_short_blip_low_power(self):
        # a 3-sample blip cannot dominate a 20-sample window median
        values = np.zeros(200)
        values[100:103] = 1.0
        assert potential_power(values, window=20) < 0.2

    def test_window_longer_than_series(self):
        values = np.asarray([0.0, 1.0, 0.0])
        assert potential_power(values, window=50) == 0.0

    def test_empty_series(self):
        assert potential_power(np.asarray([])) == 0.0

    def test_power_bounded_by_one_for_normalized(self):
        values = normalize_values(step_series(noise=0.05, seed=3))
        assert 0.0 <= potential_power(values) <= 1.0


class TestMaskToRegions:
    def test_single_run(self):
        ts = np.arange(10, dtype=float)
        mask = np.zeros(10, dtype=bool)
        mask[3:6] = True
        regions = mask_to_regions(ts, mask)
        assert len(regions) == 1
        assert (regions[0].start, regions[0].end) == (3.0, 5.0)

    def test_multiple_runs(self):
        ts = np.arange(10, dtype=float)
        mask = np.asarray([1, 1, 0, 0, 1, 0, 0, 1, 1, 1], dtype=bool)
        regions = mask_to_regions(ts, mask)
        assert len(regions) == 3
        assert (regions[2].start, regions[2].end) == (7.0, 9.0)

    def test_empty_mask(self):
        assert mask_to_regions(np.arange(5.0), np.zeros(5, dtype=bool)) == []

    def test_full_mask(self):
        regions = mask_to_regions(np.arange(5.0), np.ones(5, dtype=bool))
        assert len(regions) == 1
        assert regions[0].duration == 4.0


class TestAttributeSelection:
    def dataset(self):
        n = 300
        return Dataset(
            np.arange(n, dtype=float),
            numeric={
                "stepped": step_series(n, 150, 50, noise=0.02, seed=1),
                "flat": np.full(n, 7.0),
                "noisy_flat": np.random.default_rng(2).normal(0, 1, n),
            },
            categorical={"mode": ["x"] * n},
        )

    def test_selects_stepped_attribute(self):
        selected = AnomalyDetector().select_attributes(self.dataset())
        assert "stepped" in selected

    def test_rejects_flat_attributes(self):
        selected = AnomalyDetector().select_attributes(self.dataset())
        assert "flat" not in selected

    def test_rejects_stationary_noise(self):
        selected = AnomalyDetector().select_attributes(self.dataset())
        assert "noisy_flat" not in selected

    def test_explicit_attribute_list(self):
        selected = AnomalyDetector().select_attributes(
            self.dataset(), attributes=["flat"]
        )
        assert selected == []


class TestDetection:
    def dataset(self, n=400, start=200, width=50):
        rng = np.random.default_rng(4)
        numeric = {}
        for i in range(5):
            numeric[f"m{i}"] = step_series(
                n, start, width, lo=10.0, hi=30.0, noise=0.3, seed=10 + i
            )
        numeric["flat"] = np.full(n, 1.0)
        return Dataset(np.arange(n, dtype=float), numeric=numeric)

    def test_detects_window(self):
        result = AnomalyDetector().detect(self.dataset())
        assert result.found
        region = max(result.regions, key=lambda r: r.duration)
        assert abs(region.start - 200.0) <= 5.0
        assert abs(region.end - 249.0) <= 5.0

    def test_detection_mask_matches_regions(self):
        ds = self.dataset()
        result = AnomalyDetector().detect(ds)
        rebuilt = np.zeros(ds.n_rows, dtype=bool)
        for region in result.regions:
            rebuilt |= region.contains(ds.timestamps)
        assert np.array_equal(rebuilt, result.mask)

    def test_no_selected_attributes_no_detection(self):
        n = 100
        ds = Dataset(np.arange(n, dtype=float), numeric={"flat": np.ones(n)})
        result = AnomalyDetector().detect(ds)
        assert not result.found
        assert result.selected_attributes == []

    def test_to_region_spec(self):
        result = AnomalyDetector().detect(self.dataset())
        spec = result.to_region_spec()
        assert spec.normal is None
        assert len(spec.abnormal) == len(result.regions)

    def test_min_region_filters_slivers(self):
        detector = AnomalyDetector(min_region_s=60.0)
        result = detector.detect(self.dataset(width=50))
        # the 50 s anomaly itself is filtered at this threshold
        assert all(r.duration + 1.0 > 60.0 for r in result.regions)

    def test_empty_dataset(self):
        ds = Dataset(np.zeros(0), numeric={"a": np.zeros(0)})
        result = AnomalyDetector().detect(ds)
        assert not result.found
        assert result.mask.shape == (0,)
        assert result.regions == []
        assert result.eps == 0.0

    def test_window_longer_than_dataset(self):
        # Equation 4 clamps the window to the series length: a single
        # whole-series window has zero power, so nothing is selected
        ds = Dataset(
            np.arange(10.0),
            numeric={"a": np.r_[np.zeros(5), np.ones(5)]},
        )
        result = AnomalyDetector(window=50).detect(ds)
        assert not result.found
        assert result.selected_attributes == []

    def test_two_level_attribute_eps_zero_one_cluster(self):
        # an attribute taking exactly two values normalizes to {0, 1}:
        # every point has >= min_pts identical companions, the k-dist list
        # is all zeros, eps degenerates to 0 and everything is one big
        # (normal) cluster
        n = 100
        values = np.zeros(n)
        values[40:70] = 1.0
        ds = Dataset(np.arange(n, dtype=float), numeric={"a": values})
        result = AnomalyDetector(window=20).detect(ds)
        assert result.selected_attributes == ["a"]
        assert result.eps == 0.0
        assert not result.found

    def test_include_noise_false_masks_subset(self):
        ds = self.dataset()
        loose = AnomalyDetector(include_noise=True).detect(ds)
        strict = AnomalyDetector(include_noise=False).detect(ds)
        assert strict.selected_attributes == loose.selected_attributes
        # dropping noise can only unflag rows (before smoothing), and the
        # clustered anomaly window must survive either way
        assert strict.found
        assert int(strict.mask.sum()) <= int(loose.mask.sum())


class TestPotentialPowerBatch:
    def test_matches_scalar_on_random_series(self):
        rng = np.random.default_rng(31)
        for _ in range(25):
            n = int(rng.integers(1, 120))
            window = int(rng.integers(1, 40))
            matrix = rng.normal(size=(int(rng.integers(1, 6)), n))
            matrix = np.vstack(
                [normalize_values(row)[None, :] for row in matrix]
            )
            batch = potential_power_batch(matrix, window)
            for i, row in enumerate(matrix):
                assert batch[i] == potential_power(row, window)

    def test_matches_scalar_on_step(self):
        values = normalize_values(step_series())
        batch = potential_power_batch(values[None, :], 20)
        assert batch[0] == potential_power(values, window=20)

    def test_empty_matrix(self):
        assert potential_power_batch(np.zeros((0, 50)), 10).shape == (0,)
