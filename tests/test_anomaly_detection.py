"""Unit tests for automatic anomaly detection (Section 7)."""

import numpy as np
import pytest

from repro.core.anomaly import (
    AnomalyDetector,
    mask_to_regions,
    potential_power,
)
from repro.core.separation import normalize_values
from repro.data.dataset import Dataset


def step_series(n=200, start=100, width=40, lo=0.0, hi=1.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    values = np.full(n, lo) + rng.normal(0, noise, n)
    values[start : start + width] = hi + rng.normal(0, noise, width)
    return values


class TestPotentialPower:
    def test_flat_series_zero_power(self):
        assert potential_power(np.zeros(100)) == 0.0

    def test_step_has_high_power(self):
        values = normalize_values(step_series())
        assert potential_power(values, window=20) > 0.9

    def test_short_blip_low_power(self):
        # a 3-sample blip cannot dominate a 20-sample window median
        values = np.zeros(200)
        values[100:103] = 1.0
        assert potential_power(values, window=20) < 0.2

    def test_window_longer_than_series(self):
        values = np.asarray([0.0, 1.0, 0.0])
        assert potential_power(values, window=50) == 0.0

    def test_empty_series(self):
        assert potential_power(np.asarray([])) == 0.0

    def test_power_bounded_by_one_for_normalized(self):
        values = normalize_values(step_series(noise=0.05, seed=3))
        assert 0.0 <= potential_power(values) <= 1.0


class TestMaskToRegions:
    def test_single_run(self):
        ts = np.arange(10, dtype=float)
        mask = np.zeros(10, dtype=bool)
        mask[3:6] = True
        regions = mask_to_regions(ts, mask)
        assert len(regions) == 1
        assert (regions[0].start, regions[0].end) == (3.0, 5.0)

    def test_multiple_runs(self):
        ts = np.arange(10, dtype=float)
        mask = np.asarray([1, 1, 0, 0, 1, 0, 0, 1, 1, 1], dtype=bool)
        regions = mask_to_regions(ts, mask)
        assert len(regions) == 3
        assert (regions[2].start, regions[2].end) == (7.0, 9.0)

    def test_empty_mask(self):
        assert mask_to_regions(np.arange(5.0), np.zeros(5, dtype=bool)) == []

    def test_full_mask(self):
        regions = mask_to_regions(np.arange(5.0), np.ones(5, dtype=bool))
        assert len(regions) == 1
        assert regions[0].duration == 4.0


class TestAttributeSelection:
    def dataset(self):
        n = 300
        return Dataset(
            np.arange(n, dtype=float),
            numeric={
                "stepped": step_series(n, 150, 50, noise=0.02, seed=1),
                "flat": np.full(n, 7.0),
                "noisy_flat": np.random.default_rng(2).normal(0, 1, n),
            },
            categorical={"mode": ["x"] * n},
        )

    def test_selects_stepped_attribute(self):
        selected = AnomalyDetector().select_attributes(self.dataset())
        assert "stepped" in selected

    def test_rejects_flat_attributes(self):
        selected = AnomalyDetector().select_attributes(self.dataset())
        assert "flat" not in selected

    def test_rejects_stationary_noise(self):
        selected = AnomalyDetector().select_attributes(self.dataset())
        assert "noisy_flat" not in selected

    def test_explicit_attribute_list(self):
        selected = AnomalyDetector().select_attributes(
            self.dataset(), attributes=["flat"]
        )
        assert selected == []


class TestDetection:
    def dataset(self, n=400, start=200, width=50):
        rng = np.random.default_rng(4)
        numeric = {}
        for i in range(5):
            numeric[f"m{i}"] = step_series(
                n, start, width, lo=10.0, hi=30.0, noise=0.3, seed=10 + i
            )
        numeric["flat"] = np.full(n, 1.0)
        return Dataset(np.arange(n, dtype=float), numeric=numeric)

    def test_detects_window(self):
        result = AnomalyDetector().detect(self.dataset())
        assert result.found
        region = max(result.regions, key=lambda r: r.duration)
        assert abs(region.start - 200.0) <= 5.0
        assert abs(region.end - 249.0) <= 5.0

    def test_detection_mask_matches_regions(self):
        ds = self.dataset()
        result = AnomalyDetector().detect(ds)
        rebuilt = np.zeros(ds.n_rows, dtype=bool)
        for region in result.regions:
            rebuilt |= region.contains(ds.timestamps)
        assert np.array_equal(rebuilt, result.mask)

    def test_no_selected_attributes_no_detection(self):
        n = 100
        ds = Dataset(np.arange(n, dtype=float), numeric={"flat": np.ones(n)})
        result = AnomalyDetector().detect(ds)
        assert not result.found
        assert result.selected_attributes == []

    def test_to_region_spec(self):
        result = AnomalyDetector().detect(self.dataset())
        spec = result.to_region_spec()
        assert spec.normal is None
        assert len(spec.abnormal) == len(result.regions)

    def test_min_region_filters_slivers(self):
        detector = AnomalyDetector(min_region_s=60.0)
        result = detector.detect(self.dataset(width=50))
        # the 50 s anomaly itself is filtered at this threshold
        assert all(r.duration + 1.0 > 60.0 for r in result.regions)
