"""Unit tests for the PerfXplain and PerfAugur baselines."""

import numpy as np
import pytest

from repro.baselines.perfaugur import PerfAugur, PerfAugurConfig
from repro.baselines.perfxplain import (
    HIGHER,
    LATENCY_ATTR,
    LOWER,
    PerfXplain,
    PerfXplainConfig,
    SIMILAR,
    _relation,
)
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec


def step_run(seed=0, n=160, start=80, width=40, hi=50.0):
    """Latency and a correlated metric both step up in the anomaly window."""
    rng = np.random.default_rng(seed)
    m = np.full(n, 10.0) + rng.normal(0, 0.5, n)
    m[start : start + width] = hi + rng.normal(0, 0.5, width)
    latency = np.full(n, 2.0) + rng.normal(0, 0.05, n)
    latency[start : start + width] = 8.0 + rng.normal(0, 0.2, width)
    quiet = np.full(n, 5.0) + rng.normal(0, 0.1, n)
    ds = Dataset(
        np.arange(n, dtype=float),
        numeric={"m": m, "quiet": quiet, LATENCY_ATTR: latency},
    )
    spec = RegionSpec(abnormal=[Region(float(start), float(start + width - 1))])
    return ds, spec


class TestRelation:
    def test_similar_within_half(self):
        assert _relation(12.0, 10.0, 0.5) == SIMILAR

    def test_higher_beyond_half(self):
        assert _relation(20.0, 10.0, 0.5) == HIGHER

    def test_lower(self):
        assert _relation(2.0, 10.0, 0.5) == LOWER

    def test_zero_reference_guarded(self):
        assert _relation(1.0, 0.0, 0.5) == HIGHER


class TestPerfXplain:
    def test_learns_discriminating_feature(self):
        ds, spec = step_run()
        px = PerfXplain().fit([ds], [spec], seed=0)
        assert any(f.attr == "m" and f.relation == HIGHER for f in px.features_)

    def test_latency_excluded_from_features(self):
        # PerfXplain must explain the latency difference, not restate it
        ds, spec = step_run()
        px = PerfXplain().fit([ds], [spec], seed=0)
        assert all(f.attr != LATENCY_ATTR for f in px.features_)

    def test_max_predicates_respected(self):
        ds, spec = step_run()
        px = PerfXplain(PerfXplainConfig(n_predicates=1)).fit([ds], [spec], seed=0)
        assert len(px.features_) <= 1

    def test_predict_recovers_abnormal_rows(self):
        ds, spec = step_run()
        px = PerfXplain().fit([ds], [spec], seed=0)
        predicted = px.predict(ds, seed=1)
        actual = spec.abnormal_mask(ds)
        tp = (predicted & actual).sum()
        assert tp / actual.sum() > 0.8

    def test_transfer_to_unseen_dataset(self):
        train, train_spec = step_run(seed=1)
        test, test_spec = step_run(seed=2)
        px = PerfXplain().fit([train], [train_spec], seed=0)
        predicted = px.predict(test, seed=1)
        actual = test_spec.abnormal_mask(test)
        assert (predicted & actual).sum() / actual.sum() > 0.8

    def test_misses_sub_threshold_shift(self):
        # a 20 % metric shift is below the 50 % significance cut: the
        # pairwise feature on 'm' fires only on noise extremes, so recall
        # collapses (DBSherlock's partition space has no such floor)
        ds, spec = step_run(hi=12.0)
        px = PerfXplain().fit([ds], [spec], seed=0)
        predicted = px.predict(ds, seed=1)
        actual = spec.abnormal_mask(ds)
        assert (predicted & actual).sum() / actual.sum() < 0.5

    def test_requires_latency_attribute(self):
        ds = Dataset([0.0, 1.0], numeric={"m": [1.0, 2.0]})
        spec = RegionSpec(abnormal=[Region(1.0, 1.0)])
        with pytest.raises(ValueError):
            PerfXplain().fit([ds], [spec])

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            PerfXplain().fit([], [])

    def test_unfitted_predicts_nothing(self):
        ds, _ = step_run()
        assert not PerfXplain().predict(ds).any()

    def test_explanation_string(self):
        ds, spec = step_run()
        px = PerfXplain().fit([ds], [spec], seed=0)
        assert "slow vs fast" in px.explanation()

    def test_multiple_training_datasets(self):
        d1, s1 = step_run(seed=3)
        d2, s2 = step_run(seed=4)
        px = PerfXplain().fit([d1, d2], [s1, s2], seed=0)
        assert px.features_

    def test_feature_masks_shape(self):
        ds, spec = step_run()
        px = PerfXplain().fit([ds], [spec], seed=0)
        masks = px.feature_masks(ds)
        assert len(masks) == len(px.features_)
        assert all(m.shape == (ds.n_rows,) for m in masks)

    def test_missing_attribute_mask_empty(self):
        ds, spec = step_run()
        px = PerfXplain().fit([ds], [spec], seed=0)
        reduced = ds.drop_attributes([f.attr for f in px.features_])
        assert not px.predict(reduced, seed=0).any()


class TestPerfAugur:
    def latency_series(self, n=200, start=100, width=40):
        rng = np.random.default_rng(5)
        v = 5.0 + rng.normal(0, 0.3, n)
        v[start : start + width] = 25.0 + rng.normal(0, 1.0, width)
        return v

    def test_finds_shifted_interval(self):
        # PerfAugur's robust scan covers the anomaly but (with its length
        # bonus) tends to over-extend — the sloppiness Table 7 reflects.
        pa = PerfAugur()
        start, end, score = pa.best_interval(self.latency_series())
        assert 90 <= start <= 105
        assert end >= 135
        assert score > 0

    def test_detect_returns_region_spec(self):
        values = self.latency_series()
        ds = Dataset(np.arange(200, dtype=float),
                     numeric={"txn.avg_latency_ms": values})
        spec = PerfAugur().detect(ds)
        region = spec.abnormal[0]
        assert region.start <= 100 <= region.end
        assert region.end >= 135

    def test_short_series_degrades_gracefully(self):
        pa = PerfAugur(PerfAugurConfig(min_length=10))
        start, end, score = pa.best_interval(np.ones(5))
        assert (start, end) == (0, 5)

    def test_step_scan_speedup_close_enough(self):
        exact = PerfAugur(PerfAugurConfig(step=1))
        coarse = PerfAugur(PerfAugurConfig(step=5))
        series = self.latency_series()
        s1, e1, _ = exact.best_interval(series)
        s5, e5, _ = coarse.best_interval(series)
        assert abs(s1 - s5) <= 5 and abs(e1 - e5) <= 5

    def test_score_prefers_true_window(self):
        pa = PerfAugur()
        series = self.latency_series()
        true_score = pa.score_interval(series, 100, 140)
        off_score = pa.score_interval(series, 10, 50)
        assert true_score > off_score

    def test_length_bonus_configurable(self):
        series = self.latency_series()
        flat = PerfAugur(PerfAugurConfig(length_exponent=0.0))
        s, e, _ = flat.best_interval(series)
        assert e - s >= 10
