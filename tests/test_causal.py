"""Unit tests for causal models: confidence, merging, store (Section 6)."""

import numpy as np
import pytest

from repro.core.causal import CausalModel, CausalModelStore, model_confidence
from repro.core.predicates import CategoricalPredicate, NumericPredicate
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec


def step_dataset(hi=50.0):
    values = np.asarray([10.0] * 60 + [hi] * 30 + [10.0] * 30)
    return (
        Dataset(np.arange(120, dtype=float),
                numeric={"m": values},
                categorical={"mode": ["s"] * 60 + ["b"] * 30 + ["s"] * 30}),
        RegionSpec(abnormal=[Region(60.0, 89.0)]),
    )


class TestConfidence:
    def test_matching_predicate_has_high_confidence(self):
        ds, spec = step_dataset()
        model = CausalModel("X", [NumericPredicate("m", lower=30.0)])
        assert model.confidence(ds, spec) == pytest.approx(1.0)

    def test_opposite_predicate_has_negative_confidence(self):
        ds, spec = step_dataset()
        model = CausalModel("X", [NumericPredicate("m", upper=30.0)])
        assert model.confidence(ds, spec) < 0.0

    def test_categorical_effect_predicate(self):
        ds, spec = step_dataset()
        model = CausalModel("X", [CategoricalPredicate.of("mode", ["b"])])
        assert model.confidence(ds, spec) == pytest.approx(1.0)

    def test_confidence_averages_over_predicates(self):
        ds, spec = step_dataset()
        good = NumericPredicate("m", lower=30.0)
        missing = NumericPredicate("ghost", lower=0.0)
        model = CausalModel("X", [good, missing])
        assert model.confidence(ds, spec) == pytest.approx(0.5)

    def test_empty_model_zero_confidence(self):
        ds, spec = step_dataset()
        assert CausalModel("X", []).confidence(ds, spec) == 0.0

    def test_model_confidence_function_matches_method(self):
        ds, spec = step_dataset()
        preds = [NumericPredicate("m", lower=30.0)]
        assert model_confidence(preds, ds, spec) == pytest.approx(
            CausalModel("X", preds).confidence(ds, spec)
        )

    def test_confidence_uses_partitions_not_tuples(self):
        # duplicate many normal rows: tuple-based power would dilute, the
        # partition-space confidence must not change materially
        values = np.asarray([10.0] * 300 + [50.0] * 30)
        ds = Dataset(np.arange(330, dtype=float), numeric={"m": values})
        spec = RegionSpec(abnormal=[Region(300.0, 329.0)])
        model = CausalModel("X", [NumericPredicate("m", lower=30.0)])
        assert model.confidence(ds, spec) == pytest.approx(1.0)


class TestMerge:
    def test_merge_keeps_common_attributes_only(self):
        # the paper's Section 6.2 worked example
        m1 = CausalModel("C", [
            NumericPredicate("A", lower=10.0),
            NumericPredicate("B", lower=100.0),
            NumericPredicate("C", lower=20.0),
            CategoricalPredicate.of("E", ["xx", "yy", "zz"]),
        ])
        m2 = CausalModel("C", [
            NumericPredicate("A", lower=15.0),
            NumericPredicate("C", lower=15.0),
            NumericPredicate("D", upper=250.0),
            CategoricalPredicate.of("E", ["xx", "zz"]),
        ])
        merged = m1.merge(m2)
        by_attr = {p.attr: p for p in merged.predicates}
        assert set(by_attr) == {"A", "C", "E"}
        assert by_attr["A"].lower == 10.0
        assert by_attr["C"].lower == 15.0
        assert by_attr["E"].categories == frozenset({"xx", "yy", "zz"})

    def test_inconsistent_directions_discarded(self):
        m1 = CausalModel("C", [NumericPredicate("A", lower=10.0)])
        m2 = CausalModel("C", [NumericPredicate("A", upper=30.0)])
        assert m1.merge(m2).predicates == []

    def test_mixed_types_on_same_attribute_discarded(self):
        m1 = CausalModel("C", [NumericPredicate("A", lower=10.0)])
        m2 = CausalModel("C", [CategoricalPredicate.of("A", ["x"])])
        assert m1.merge(m2).predicates == []

    def test_merge_different_causes_rejected(self):
        with pytest.raises(ValueError):
            CausalModel("C1", []).merge(CausalModel("C2", []))

    def test_merge_counts_datasets(self):
        m1 = CausalModel("C", [NumericPredicate("A", lower=1.0)])
        m2 = CausalModel("C", [NumericPredicate("A", lower=2.0)])
        assert m1.merge(m2).n_merged == 2
        assert m1.merge(m2).merge(m1).n_merged == 3

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            CausalModel("C", [
                NumericPredicate("A", lower=1.0),
                NumericPredicate("A", lower=2.0),
            ])


class TestStore:
    def test_add_and_get(self):
        store = CausalModelStore()
        store.add(CausalModel("C", [NumericPredicate("A", lower=1.0)]))
        assert store.get("C") is not None
        assert len(store) == 1

    def test_add_same_cause_merges(self):
        store = CausalModelStore()
        store.add(CausalModel("C", [
            NumericPredicate("A", lower=10.0),
            NumericPredicate("B", lower=1.0),
        ]))
        stored = store.add(CausalModel("C", [NumericPredicate("A", lower=5.0)]))
        assert stored.n_merged == 2
        assert {p.attr for p in stored.predicates} == {"A"}

    def test_merge_on_add_disabled_replaces(self):
        store = CausalModelStore(merge_on_add=False)
        store.add(CausalModel("C", [NumericPredicate("A", lower=10.0)]))
        store.add(CausalModel("C", [NumericPredicate("B", lower=1.0)]))
        assert {p.attr for p in store.get("C").predicates} == {"B"}

    def test_rank_orders_by_confidence(self):
        ds, spec = step_dataset()
        store = CausalModelStore()
        store.add(CausalModel("good", [NumericPredicate("m", lower=30.0)]))
        store.add(CausalModel("bad", [NumericPredicate("m", upper=30.0)]))
        ranked = store.rank(ds, spec)
        assert [c for c, _ in ranked] == ["good", "bad"]

    def test_iteration_and_causes(self):
        store = CausalModelStore()
        store.add(CausalModel("C1", []))
        store.add(CausalModel("C2", []))
        assert set(store.causes) == {"C1", "C2"}
        assert len(list(store)) == 2
