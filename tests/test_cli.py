"""Unit tests for the repro-sherlock CLI."""

import io

import pytest

from repro.cli import build_parser, main
from repro.data.loader import load_dataset_csv


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def incident_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "incident.csv"
    code, text = run_cli(
        [
            "simulate",
            "--anomaly", "cpu_saturation",
            "--duration", "30",
            "--normal", "150",
            "--seed", "5",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path, text


class TestSimulate:
    def test_writes_csv(self, incident_csv):
        path, text = incident_csv
        assert path.exists()
        assert "injected cause: CPU Saturation" in text

    def test_csv_loads(self, incident_csv):
        path, _ = incident_csv
        ds = load_dataset_csv(path)
        assert ds.n_rows == 180
        assert "txn.avg_latency_ms" in ds.numeric_attributes

    def test_reports_region(self, incident_csv):
        _, text = incident_csv
        assert "abnormal region: 75:104" in text


class TestDetect:
    def test_detects_region(self, incident_csv):
        path, _ = incident_csv
        code, text = run_cli(["detect", str(path)])
        assert code == 0
        assert "abnormal region" in text


class TestExplain:
    def test_prints_predicates(self, incident_csv):
        path, _ = incident_csv
        code, text = run_cli(
            ["explain", str(path), "--abnormal", "75:104"]
        )
        assert code == 0
        assert "os.cpu_usage" in text

    def test_rules_prune(self, incident_csv):
        path, _ = incident_csv
        _, with_rules = run_cli(["explain", str(path), "--abnormal", "75:104"])
        _, without = run_cli(
            ["explain", str(path), "--abnormal", "75:104", "--no-rules"]
        )
        assert len(without.splitlines()) >= len(
            [l for l in with_rules.splitlines() if not l.startswith("(pruned")]
        )

    def test_impossible_theta_fails(self, incident_csv):
        path, _ = incident_csv
        code, text = run_cli(
            ["explain", str(path), "--abnormal", "75:104", "--theta", "5.0"]
        )
        assert code == 1
        assert "no predicates" in text

    def test_bad_range_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "x.csv", "--abnormal", "oops"])


class TestReportAndPlot:
    def test_report(self, incident_csv):
        path, _ = incident_csv
        code, text = run_cli(["report", str(path), "--abnormal", "75:104"])
        assert code == 0
        assert "Incident report" in text

    def test_plot(self, incident_csv):
        path, _ = incident_csv
        code, text = run_cli(["plot", str(path)])
        assert code == 0
        assert "txn.avg_latency_ms" in text

    def test_plot_unknown_attribute(self, incident_csv):
        path, _ = incident_csv
        code, text = run_cli(["plot", str(path), "--attr", "nope"])
        assert code == 1


class TestCauses:
    def test_lists_ten(self):
        code, text = run_cli(["causes"])
        assert code == 0
        assert len(text.strip().splitlines()) == 10
        assert "Lock Contention" in text


class TestFleetStatus:
    def test_renders_snapshot_file(self, tmp_path):
        import numpy as np

        from repro.fleet import FleetDetector, FleetScheduler, FleetSimSource
        from repro.obs.metrics import MetricsRegistry

        # run a tiny fleet against a private registry and dump it
        from repro.fleet import engine as fleet_engine  # noqa: F401

        attrs = ["a", "b"]
        det = FleetDetector(4, attrs, capacity=30, window=6,
                            pp_threshold=0.4, min_region_s=2.0)
        sched = FleetScheduler(det, label_metrics=True)
        src = FleetSimSource(4, attrs, seed=2, anomaly_fraction=0.5,
                             anomaly_period=20, anomaly_duration=10,
                             anomaly_scale=10.0)
        for times, values, active in src.take(40):
            sched.run_round(times, values, active)
        sched.close()
        from repro.obs.metrics import REGISTRY

        path = tmp_path / "metrics.json"
        path.write_text(REGISTRY.to_json())
        code, text = run_cli(["fleet", "status", "--metrics", str(path)])
        assert code == 0
        assert "fleet status" in text
        assert "tenant" in text
        assert "t0000" in text

    def test_live_registry_without_fleet_metrics(self):
        code, text = run_cli(["fleet", "status", "--max-tenants", "3"])
        assert code == 0
        assert "fleet status" in text

    def test_json_output_is_machine_readable(self, tmp_path):
        import json

        from repro.fleet import FleetDetector, FleetScheduler, FleetSimSource
        from repro.obs.metrics import REGISTRY

        attrs = ["a", "b"]
        det = FleetDetector(3, attrs, capacity=30, window=6,
                            pp_threshold=0.4, min_region_s=2.0)
        sched = FleetScheduler(det, label_metrics=True)
        src = FleetSimSource(3, attrs, seed=2, anomaly_fraction=0.5,
                             anomaly_period=20, anomaly_duration=10,
                             anomaly_scale=10.0)
        for times, values, active in src.take(30):
            sched.run_round(times, values, active)
        sched.close()
        path = tmp_path / "metrics.json"
        path.write_text(REGISTRY.to_json())

        code, text = run_cli(
            ["fleet", "status", "--metrics", str(path), "--json"]
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["totals"]
        tenants = payload["tenants"]
        assert "t0000" in {row["tenant"] for row in tenants}
        for row in tenants:
            assert "health" in row and "breaker" in row


@pytest.fixture(scope="module")
def incident_bundle(tmp_path_factory):
    """One incident bundle written by a real recorder."""
    from repro.obs import metrics
    from repro.obs.incident import IncidentRecorder

    root = tmp_path_factory.mktemp("incidents")
    registry = metrics.MetricsRegistry()
    counter = registry.counter("repro_cli_step_total", "step")
    ring = metrics.TimelineRing(registry, max_samples=32)
    for i in range(16):
        if i >= 8:
            counter.inc(3)
        ring.sample(t=float(i))
    recorder = IncidentRecorder(root, timeline=ring)
    path = recorder.snapshot(
        "alpha", "durability degraded: full disk", 8,
        context={"round": 8},
    )
    assert path is not None
    return root, path


class TestObsIncidents:
    def test_list(self, incident_bundle):
        root, path = incident_bundle
        code, text = run_cli(["obs", "incidents", "list", "--root", str(root)])
        assert code == 0
        assert str(path) in text
        assert "tenant=alpha" in text

    def test_list_empty_root_fails(self, tmp_path):
        code, text = run_cli(
            ["obs", "incidents", "list", "--root", str(tmp_path)]
        )
        assert code == 1
        assert "no incident bundles" in text

    def test_show(self, incident_bundle):
        _root, path = incident_bundle
        code, text = run_cli(["obs", "incidents", "show", str(path)])
        assert code == 0
        assert "tenant: alpha" in text
        assert "durability degraded" in text
        assert "context.round: 8" in text
        assert "window" in text

    def test_explain_without_models_reports_predicates_only(
        self, incident_bundle
    ):
        _root, path = incident_bundle
        code, text = run_cli(["obs", "incidents", "explain", str(path)])
        assert code == 0
        assert "diagnosing incident:alpha" in text
        assert "top cause: (no causal models loaded)" in text

    def test_explain_unusable_bundle_fails_cleanly(self, tmp_path):
        from repro.obs.incident import IncidentRecorder

        recorder = IncidentRecorder(tmp_path)  # no timeline evidence
        path = recorder.snapshot("beta", "no evidence", 1)
        code, text = run_cli(["obs", "incidents", "explain", str(path)])
        assert code == 1
        assert "no usable timeline" in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_drift_allowed(self):
        args = build_parser().parse_args(
            ["simulate", "--anomaly", "workload_drift", "--out", "x.csv"]
        )
        assert args.anomaly == "workload_drift"
