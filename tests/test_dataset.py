"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.data.dataset import Dataset


def make_dataset(n=10):
    return Dataset(
        np.arange(n, dtype=float),
        numeric={"a": np.arange(n, dtype=float), "b": np.ones(n)},
        categorical={"c": np.asarray(["x"] * (n // 2) + ["y"] * (n - n // 2),
                                     dtype=object)},
        name="t",
    )


class TestConstruction:
    def test_basic_shape(self):
        ds = make_dataset(10)
        assert ds.n_rows == 10
        assert len(ds) == 10

    def test_attribute_lists(self):
        ds = make_dataset()
        assert ds.numeric_attributes == ["a", "b"]
        assert ds.categorical_attributes == ["c"]
        assert ds.attributes == ["a", "b", "c"]

    def test_empty_dataset_allowed(self):
        ds = Dataset([], numeric={}, categorical={})
        assert ds.n_rows == 0

    def test_timestamps_must_be_1d(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)))

    def test_timestamps_must_increase(self):
        with pytest.raises(ValueError):
            Dataset([0.0, 2.0, 1.0])

    def test_timestamps_strictly_increase(self):
        with pytest.raises(ValueError):
            Dataset([0.0, 1.0, 1.0])

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset([0.0, 1.0], numeric={"a": [1.0]})

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError):
            Dataset(
                [0.0, 1.0],
                numeric={"a": [1.0, 2.0]},
                categorical={"a": ["x", "y"]},
            )

    def test_repr_mentions_counts(self):
        assert "numeric=2" in repr(make_dataset())


class TestFromRows:
    def test_type_inference(self):
        ds = Dataset.from_rows(
            [0.0, 1.0],
            [{"n": 1, "s": "a"}, {"n": 2, "s": "b"}],
        )
        assert ds.is_numeric("n")
        assert not ds.is_numeric("s")

    def test_values_preserved(self):
        ds = Dataset.from_rows([0.0, 1.0], [{"n": 1.5}, {"n": 2.5}])
        assert list(ds.column("n")) == [1.5, 2.5]

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError):
            Dataset.from_rows([0.0], [{"n": 1}, {"n": 2}])

    def test_inconsistent_rows_rejected(self):
        with pytest.raises(ValueError):
            Dataset.from_rows([0.0, 1.0], [{"n": 1}, {"m": 2}])

    def test_empty_rows(self):
        ds = Dataset.from_rows([], [])
        assert ds.n_rows == 0


class TestAccess:
    def test_column_numeric(self):
        ds = make_dataset()
        assert ds.column("a")[3] == 3.0

    def test_column_categorical(self):
        ds = make_dataset()
        assert ds.column("c")[0] == "x"

    def test_column_missing(self):
        with pytest.raises(KeyError):
            make_dataset().column("nope")

    def test_is_numeric_missing(self):
        with pytest.raises(KeyError):
            make_dataset().is_numeric("nope")

    def test_contains(self):
        ds = make_dataset()
        assert "a" in ds and "c" in ds and "zzz" not in ds


class TestRowOperations:
    def test_select_subset(self):
        ds = make_dataset(10)
        sub = ds.select(ds.timestamps < 5)
        assert sub.n_rows == 5
        assert list(sub.column("a")) == [0, 1, 2, 3, 4]

    def test_select_preserves_categorical(self):
        ds = make_dataset(10)
        sub = ds.select(ds.timestamps >= 5)
        assert set(sub.column("c")) == {"y"}

    def test_select_bad_mask_shape(self):
        with pytest.raises(ValueError):
            make_dataset(10).select(np.ones(3, dtype=bool))

    def test_drop_attributes(self):
        ds = make_dataset().drop_attributes(["b", "c"])
        assert ds.attributes == ["a"]

    def test_time_mask_inclusive(self):
        ds = make_dataset(10)
        mask = ds.time_mask(2.0, 4.0)
        assert mask.sum() == 3


class TestNormalization:
    def test_normalized_range(self):
        ds = make_dataset(10)
        norm = ds.normalized("a")
        assert norm.min() == 0.0 and norm.max() == 1.0

    def test_normalized_constant_is_zero(self):
        ds = make_dataset()
        assert np.all(ds.normalized("b") == 0.0)

    def test_normalized_categorical_rejected(self):
        with pytest.raises(TypeError):
            make_dataset().normalized("c")
