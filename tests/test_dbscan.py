"""Unit tests for the from-scratch DBSCAN implementation."""

import numpy as np
import pytest

from repro.cluster.dbscan import DBSCAN, NOISE, k_distances


def two_blobs(n=30, separation=10.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.3, size=(n, 2))
    b = rng.normal(separation, 0.3, size=(n, 2))
    return np.vstack([a, b])


class TestKDistances:
    def test_shape(self):
        pts = two_blobs()
        assert k_distances(pts, 3).shape == (60,)

    def test_line_geometry(self):
        pts = np.asarray([[0.0], [1.0], [2.0], [3.0]])
        kd = k_distances(pts, 1)
        assert list(kd) == [1.0, 1.0, 1.0, 1.0]

    def test_k_larger_than_points_clamped(self):
        pts = np.asarray([[0.0], [1.0]])
        kd = k_distances(pts, 10)
        assert kd.shape == (2,)

    def test_single_point(self):
        assert k_distances(np.asarray([[0.0]]), 3)[0] == 0.0

    def test_empty(self):
        assert k_distances(np.zeros((0, 2)), 3).size == 0

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            k_distances(two_blobs(), 0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            k_distances(np.zeros(5), 1)


class TestDBSCAN:
    def test_two_blobs_two_clusters(self):
        labels = DBSCAN(eps=1.0, min_pts=3).fit_predict(two_blobs())
        assert set(labels[:30]) == {labels[0]}
        assert set(labels[30:]) == {labels[30]}
        assert labels[0] != labels[30]

    def test_isolated_point_is_noise(self):
        pts = np.vstack([two_blobs(), [[100.0, 100.0]]])
        labels = DBSCAN(eps=1.0, min_pts=3).fit_predict(pts)
        assert labels[-1] == NOISE

    def test_auto_eps_heuristic(self):
        clusterer = DBSCAN(eps=None, min_pts=3).fit(two_blobs())
        kd = k_distances(two_blobs(), 3)
        expected = max(float(kd.max()) / 4.0, float(np.quantile(kd, 0.95)))
        assert clusterer.eps_ == pytest.approx(expected)

    def test_min_pts_controls_core_points(self):
        # a pair of close points cannot form a cluster with min_pts=3
        pts = np.asarray([[0.0, 0.0], [0.1, 0.0], [50.0, 50.0], [50.1, 50.0]])
        labels = DBSCAN(eps=1.0, min_pts=3).fit_predict(pts)
        assert all(l == NOISE for l in labels)

    def test_min_pts_one_every_point_core(self):
        pts = np.asarray([[0.0, 0.0], [100.0, 100.0]])
        labels = DBSCAN(eps=1.0, min_pts=1).fit_predict(pts)
        assert NOISE not in labels
        assert labels[0] != labels[1]

    def test_border_point_joins_cluster(self):
        # chain: dense core plus one point within eps of the edge
        core = np.asarray([[0.0], [0.1], [0.2]])
        border = np.asarray([[1.0]])
        labels = DBSCAN(eps=0.9, min_pts=3).fit_predict(np.vstack([core, border]))
        assert labels[3] == labels[0]

    def test_identical_points_single_cluster(self):
        pts = np.zeros((10, 3))
        labels = DBSCAN(eps=None, min_pts=3).fit_predict(pts)
        assert set(labels) == {0}

    def test_1d_input_promoted(self):
        labels = DBSCAN(eps=1.0, min_pts=2).fit_predict(
            np.asarray([0.0, 0.1, 50.0, 50.1])
        )
        assert labels[0] == labels[1] != labels[2]

    def test_empty_input(self):
        clusterer = DBSCAN(eps=1.0).fit(np.zeros((0, 2)))
        assert clusterer.labels_.size == 0

    def test_cluster_sizes(self):
        clusterer = DBSCAN(eps=1.0, min_pts=3).fit(two_blobs())
        sizes = clusterer.cluster_sizes()
        assert sorted(sizes.values()) == [30, 30]

    def test_cluster_sizes_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DBSCAN().cluster_sizes()

    def test_bad_min_pts_rejected(self):
        with pytest.raises(ValueError):
            DBSCAN(min_pts=0)

    def test_deterministic(self):
        pts = two_blobs(seed=5)
        l1 = DBSCAN(eps=1.0, min_pts=3).fit_predict(pts)
        l2 = DBSCAN(eps=1.0, min_pts=3).fit_predict(pts)
        assert np.array_equal(l1, l2)
