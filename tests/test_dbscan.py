"""Unit tests for the from-scratch DBSCAN implementation."""

import numpy as np
import pytest

from repro.cluster.dbscan import DBSCAN, NOISE, k_distances


def two_blobs(n=30, separation=10.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.3, size=(n, 2))
    b = rng.normal(separation, 0.3, size=(n, 2))
    return np.vstack([a, b])


class TestKDistances:
    def test_shape(self):
        pts = two_blobs()
        assert k_distances(pts, 3).shape == (60,)

    def test_line_geometry(self):
        pts = np.asarray([[0.0], [1.0], [2.0], [3.0]])
        kd = k_distances(pts, 1)
        assert list(kd) == [1.0, 1.0, 1.0, 1.0]

    def test_k_larger_than_points_clamped(self):
        pts = np.asarray([[0.0], [1.0]])
        kd = k_distances(pts, 10)
        assert kd.shape == (2,)

    def test_single_point(self):
        assert k_distances(np.asarray([[0.0]]), 3)[0] == 0.0

    def test_empty(self):
        assert k_distances(np.zeros((0, 2)), 3).size == 0

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            k_distances(two_blobs(), 0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            k_distances(np.zeros(5), 1)


class TestDBSCAN:
    def test_two_blobs_two_clusters(self):
        labels = DBSCAN(eps=1.0, min_pts=3).fit_predict(two_blobs())
        assert set(labels[:30]) == {labels[0]}
        assert set(labels[30:]) == {labels[30]}
        assert labels[0] != labels[30]

    def test_isolated_point_is_noise(self):
        pts = np.vstack([two_blobs(), [[100.0, 100.0]]])
        labels = DBSCAN(eps=1.0, min_pts=3).fit_predict(pts)
        assert labels[-1] == NOISE

    def test_auto_eps_heuristic(self):
        clusterer = DBSCAN(eps=None, min_pts=3).fit(two_blobs())
        kd = k_distances(two_blobs(), 3)
        expected = max(float(kd.max()) / 4.0, float(np.quantile(kd, 0.95)))
        assert clusterer.eps_ == pytest.approx(expected)

    def test_min_pts_controls_core_points(self):
        # a pair of close points cannot form a cluster with min_pts=3
        pts = np.asarray([[0.0, 0.0], [0.1, 0.0], [50.0, 50.0], [50.1, 50.0]])
        labels = DBSCAN(eps=1.0, min_pts=3).fit_predict(pts)
        assert all(l == NOISE for l in labels)

    def test_min_pts_one_every_point_core(self):
        pts = np.asarray([[0.0, 0.0], [100.0, 100.0]])
        labels = DBSCAN(eps=1.0, min_pts=1).fit_predict(pts)
        assert NOISE not in labels
        assert labels[0] != labels[1]

    def test_border_point_joins_cluster(self):
        # chain: dense core plus one point within eps of the edge
        core = np.asarray([[0.0], [0.1], [0.2]])
        border = np.asarray([[1.0]])
        labels = DBSCAN(eps=0.9, min_pts=3).fit_predict(np.vstack([core, border]))
        assert labels[3] == labels[0]

    def test_identical_points_single_cluster(self):
        pts = np.zeros((10, 3))
        labels = DBSCAN(eps=None, min_pts=3).fit_predict(pts)
        assert set(labels) == {0}

    def test_1d_input_promoted(self):
        labels = DBSCAN(eps=1.0, min_pts=2).fit_predict(
            np.asarray([0.0, 0.1, 50.0, 50.1])
        )
        assert labels[0] == labels[1] != labels[2]

    def test_empty_input(self):
        clusterer = DBSCAN(eps=1.0).fit(np.zeros((0, 2)))
        assert clusterer.labels_.size == 0

    def test_cluster_sizes(self):
        clusterer = DBSCAN(eps=1.0, min_pts=3).fit(two_blobs())
        sizes = clusterer.cluster_sizes()
        assert sorted(sizes.values()) == [30, 30]

    def test_cluster_sizes_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DBSCAN().cluster_sizes()

    def test_bad_min_pts_rejected(self):
        with pytest.raises(ValueError):
            DBSCAN(min_pts=0)

    def test_deterministic(self):
        pts = two_blobs(seed=5)
        l1 = DBSCAN(eps=1.0, min_pts=3).fit_predict(pts)
        l2 = DBSCAN(eps=1.0, min_pts=3).fit_predict(pts)
        assert np.array_equal(l1, l2)

    def test_single_point_min_pts_one_is_cluster(self):
        # regression: a lone point with min_pts=1 is its own (trivially
        # dense) cluster, not noise
        labels = DBSCAN(eps=1.0, min_pts=1).fit_predict(np.asarray([[0.0]]))
        assert list(labels) == [0]
        labels = DBSCAN(eps=None, min_pts=1).fit_predict(np.asarray([[3.0]]))
        assert list(labels) == [0]

    def test_border_point_keeps_first_cluster(self):
        # a border point within eps of two clusters' cores belongs to the
        # cluster that expands first (no later relabeling)
        cluster_a = np.asarray([[0.0], [0.1], [0.2], [0.3]])
        cluster_b = np.asarray([[2.0], [2.1], [2.2], [2.3]])
        border = np.asarray([[1.15]])
        pts = np.vstack([cluster_a, cluster_b, border])
        labels = DBSCAN(eps=0.9, min_pts=4).fit_predict(pts)
        assert labels[8] == labels[0]
        assert labels[0] != labels[4]

    def test_no_redundant_core_relabeling(self):
        # every point's final label comes from the first cluster that
        # claims it — run twice with point order reversed and check the
        # partition (not the ids) is identical
        pts = two_blobs(n=40, separation=4.0, seed=8)
        forward = DBSCAN(eps=1.0, min_pts=3).fit_predict(pts)
        backward = DBSCAN(eps=1.0, min_pts=3).fit_predict(pts[::-1])[::-1]
        for labels in (forward, backward):
            assert set(labels[:40]) == {labels[0]}
            assert set(labels[40:]) == {labels[40]}


class TestGridIndex:
    def random_points(self, n, d, seed):
        rng = np.random.default_rng(seed)
        return np.vstack(
            [
                rng.normal(0.0, 0.5, size=(n // 2, d)),
                rng.normal(3.0, 0.5, size=(n - n // 2, d)),
            ]
        )

    @pytest.mark.parametrize("d", [1, 2, 5])
    def test_grid_matches_dense_labels(self, d):
        for seed in range(5):
            pts = self.random_points(120, d, seed)
            grid = DBSCAN(eps=0.8, min_pts=3, index="grid").fit_predict(pts)
            dense = DBSCAN(eps=0.8, min_pts=3, index="dense").fit_predict(pts)
            assert np.array_equal(grid, dense)

    def test_grid_matches_dense_with_auto_eps(self):
        pts = self.random_points(150, 3, seed=42)
        grid = DBSCAN(eps=None, min_pts=3, index="grid").fit(pts)
        dense = DBSCAN(eps=None, min_pts=3, index="dense").fit(pts)
        assert grid.eps_ == dense.eps_
        assert np.array_equal(grid.labels_, dense.labels_)

    def test_auto_uses_grid_above_crossover(self):
        from repro.cluster.dbscan import _GRID_MIN_POINTS

        small = self.random_points(_GRID_MIN_POINTS - 4, 2, seed=1)
        large = self.random_points(_GRID_MIN_POINTS + 40, 2, seed=1)
        for pts in (small, large):
            auto = DBSCAN(eps=0.8, min_pts=3, index="auto").fit_predict(pts)
            dense = DBSCAN(eps=0.8, min_pts=3, index="dense").fit_predict(pts)
            assert np.array_equal(auto, dense)

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError):
            DBSCAN(index="kdtree")


class TestChunkedKDistances:
    def test_chunked_matches_unchunked(self):
        from repro.stream.golden import golden_k_distances

        pts = two_blobs(n=50, seed=6)
        golden = golden_k_distances(pts, 3)
        for chunk in (1, 7, 64, 10_000):
            np.testing.assert_allclose(
                k_distances(pts, 3, chunk_size=chunk), golden, atol=1e-9
            )
