"""Unit tests for the pluggable detection strategies."""

import numpy as np
import pytest

from repro.detect.strategies import (
    DbscanDetector,
    EnsembleDetector,
    RobustZScoreDetector,
    ThroughputDipDetector,
)
from repro.data.dataset import Dataset


def telemetry(n=400, start=200, width=50, seed=0):
    """Five stepped attributes + latency/throughput indicators."""
    rng = np.random.default_rng(seed)
    numeric = {}
    for i in range(5):
        v = np.full(n, 10.0) + rng.normal(0, 0.3, n)
        v[start : start + width] = 30.0 + rng.normal(0, 0.3, width)
        numeric[f"m{i}"] = v
    latency = np.full(n, 2.0) + rng.normal(0, 0.05, n)
    latency[start : start + width] = 8.0 + rng.normal(0, 0.2, width)
    tps = np.full(n, 900.0) + rng.normal(0, 5.0, n)
    tps[start : start + width] = 300.0 + rng.normal(0, 5.0, width)
    numeric["txn.avg_latency_ms"] = latency
    numeric["txn.throughput_tps"] = tps
    return Dataset(np.arange(n, dtype=float), numeric=numeric)


def covers_window(result, start=200, end=249, tolerance=10):
    if not result.found:
        return False
    region = max(result.regions, key=lambda r: r.duration)
    return abs(region.start - start) <= tolerance and abs(region.end - end) <= tolerance


ALL_STRATEGIES = [
    DbscanDetector,
    RobustZScoreDetector,
    ThroughputDipDetector,
    EnsembleDetector,
]


class TestAllStrategies:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_finds_step_window(self, strategy):
        result = strategy().detect(telemetry())
        assert covers_window(result), strategy.__name__

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_quiet_run_stays_quiet(self, strategy):
        rng = np.random.default_rng(3)
        n = 300
        ds = Dataset(
            np.arange(n, dtype=float),
            numeric={
                "m": 10.0 + rng.normal(0, 0.3, n),
                "txn.avg_latency_ms": 2.0 + rng.normal(0, 0.05, n),
                "txn.throughput_tps": 900.0 + rng.normal(0, 5.0, n),
            },
        )
        result = strategy().detect(ds)
        flagged = result.mask.sum()
        assert flagged < n * 0.2, strategy.__name__

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_mask_matches_regions(self, strategy):
        ds = telemetry()
        result = strategy().detect(ds)
        rebuilt = np.zeros(ds.n_rows, dtype=bool)
        for region in result.regions:
            rebuilt |= region.contains(ds.timestamps)
        assert np.array_equal(rebuilt, result.mask)


class TestRobustZScore:
    def test_threshold_controls_sensitivity(self):
        ds = telemetry()
        loose = RobustZScoreDetector(z_threshold=3.0).detect(ds)
        strict = RobustZScoreDetector(z_threshold=500.0).detect(ds)
        assert loose.mask.sum() >= strict.mask.sum()

    def test_no_informative_attributes(self):
        n = 100
        ds = Dataset(np.arange(n, dtype=float), numeric={"flat": np.ones(n)})
        result = RobustZScoreDetector().detect(ds)
        assert not result.found


class TestThroughputDip:
    def test_latency_only_dataset(self):
        rng = np.random.default_rng(1)
        n = 300
        latency = np.full(n, 2.0) + rng.normal(0, 0.05, n)
        latency[150:200] = 8.0
        ds = Dataset(np.arange(n, dtype=float),
                     numeric={"txn.avg_latency_ms": latency})
        result = ThroughputDipDetector().detect(ds)
        assert covers_window(result, 150, 199)

    def test_missing_indicators_no_detection(self):
        n = 100
        ds = Dataset(np.arange(n, dtype=float), numeric={"m": np.ones(n)})
        result = ThroughputDipDetector().detect(ds)
        assert not result.found

    def test_blind_to_non_indicator_shifts(self):
        # a pure cache-metric shift without a latency/throughput change
        rng = np.random.default_rng(2)
        n = 300
        m = np.full(n, 5.0) + rng.normal(0, 0.1, n)
        m[150:200] = 25.0
        ds = Dataset(
            np.arange(n, dtype=float),
            numeric={
                "m": m,
                "txn.avg_latency_ms": np.full(n, 2.0),
                "txn.throughput_tps": np.full(n, 900.0),
            },
        )
        result = ThroughputDipDetector().detect(ds)
        assert not result.found


class TestEnsemble:
    def test_majority_required(self):
        # two blind members outvote one seeing member
        seeing = RobustZScoreDetector()
        blind = ThroughputDipDetector(
            latency_attr="nope", throughput_attr="nope2"
        )
        ds = telemetry()
        ensemble = EnsembleDetector(members=[seeing, blind, blind])
        result = ensemble.detect(ds)
        assert result.mask.sum() == 0

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            EnsembleDetector(members=[])

    def test_selected_attributes_union(self):
        ds = telemetry()
        result = EnsembleDetector().detect(ds)
        assert "txn.avg_latency_ms" in result.selected_attributes


class TestFacadeIntegration:
    def test_strategies_plug_into_dbsherlock(self):
        """Any strategy drops into the DBSherlock facade as the detector."""
        from repro.core.explain import DBSherlock

        ds = telemetry()
        sherlock = DBSherlock(detector=RobustZScoreDetector())
        explanation = sherlock.explain(ds)  # no spec: auto-detect path
        assert len(explanation.predicates) > 0

    def test_ensemble_plugs_into_dbsherlock(self):
        from repro.core.explain import DBSherlock

        ds = telemetry()
        sherlock = DBSherlock(detector=EnsembleDetector())
        detection = sherlock.detect(ds)
        assert detection.found
