"""Cross-process determinism of the simulation engine.

``simulate_run`` must produce bitwise-identical telemetry in *different
interpreter processes*: a model library built on one machine has to
score identically on another, and the chaos/accuracy benches assume the
recorded JSON is reproducible.  Python randomizes ``str.__hash__`` per
process (PYTHONHASHSEED), so any ``hash(...)`` leaking into metric
values breaks this — the catalogue uses ``zlib.crc32`` instead, and
this test pins that by hashing a full simulated run under two different
hash seeds in two subprocesses.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[1] / "src")

_DIGEST_SCRIPT = r"""
import hashlib
import sys

import numpy as np

from repro.eval.harness import simulate_run

dataset, spec, cause = simulate_run(
    "cpu_saturation", duration_s=20, seed=17, normal_s=40
)
digest = hashlib.sha256()
digest.update(np.ascontiguousarray(dataset.timestamps).tobytes())
for attr in dataset.numeric_attributes:
    digest.update(attr.encode())
    digest.update(np.ascontiguousarray(dataset.column(attr)).tobytes())
for attr in dataset.categorical_attributes:
    digest.update(attr.encode())
    digest.update("\x1f".join(map(str, dataset.column(attr))).encode())
digest.update(repr(sorted((r.start, r.end) for r in spec.abnormal)).encode())
digest.update(cause.encode())
sys.stdout.write(digest.hexdigest())
"""


def run_digest(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout.strip()


def test_simulate_run_identical_across_hash_seeds():
    """Two processes with different PYTHONHASHSEED values must produce
    bitwise-identical telemetry, regions, and cause labels."""
    a = run_digest("1")
    b = run_digest("4242")
    assert a == b
    assert len(a) == 64  # a real sha256, not an empty stdout


def test_latency_multiplier_is_hash_stable():
    """The per-transaction-type latency multiplier must not depend on
    ``hash()`` (spot check of the in-process value against the stable
    CRC32 formula)."""
    import zlib

    from repro.engine.metrics import build_catalog

    txn_types = ["new_order", "payment", "delivery"]
    defs = {d.name: d for d in build_catalog(txn_types)}

    class _State:
        avg_latency_ms = 10.0

        def __getattr__(self, name):
            return 0.0

    for txn in txn_types:
        metric = defs[f"txn.avg_latency_{txn}_ms"]
        expected = 10.0 * (
            0.8 + 0.4 * (zlib.crc32(txn.encode()) % 5) / 5.0
        )
        assert metric.fn(_State()) == expected
