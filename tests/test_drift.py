"""Unit tests for the workload-drift extension."""

import numpy as np
import pytest

from repro.anomalies.base import ScheduledAnomaly
from repro.anomalies.library import ANOMALY_CAUSES, WorkloadDrift, make_anomaly
from repro.core.anomaly import AnomalyDetector
from repro.core.explain import DBSherlock
from repro.engine.collector import simulate_telemetry
from repro.workload.tpcc import tpcc_workload


def rng():
    return np.random.default_rng(0)


class TestDriftInjector:
    def test_not_in_table1_registry(self):
        assert "workload_drift" not in ANOMALY_CAUSES

    def test_constructable_via_extended_registry(self):
        assert isinstance(make_anomaly("workload_drift"), WorkloadDrift)

    def test_ramp_is_gradual(self):
        drift = WorkloadDrift(tps_growth=2.0, ramp_s=60.0)
        r = rng()
        early = drift.modifiers(0.0, r)
        middle = drift.modifiers(30.0, r)
        late = drift.modifiers(60.0, r)
        assert early.tps_multiplier == pytest.approx(1.0)
        assert 1.0 < middle.tps_multiplier < late.tps_multiplier
        assert late.tps_multiplier == pytest.approx(2.0)

    def test_plateau_after_ramp(self):
        drift = WorkloadDrift(ramp_s=60.0)
        r = rng()
        drift.modifiers(0.0, r)
        assert drift.modifiers(120.0, r).tps_multiplier == pytest.approx(
            drift.modifiers(60.0, r).tps_multiplier
        )

    def test_intensity_scales_growth(self):
        strong = WorkloadDrift(tps_growth=2.0, intensity=1.5)
        weak = WorkloadDrift(tps_growth=2.0, intensity=0.5)
        assert strong.tps_growth > weak.tps_growth


class TestDriftEndToEnd:
    @pytest.fixture(scope="class")
    def drift_run(self):
        drift = WorkloadDrift(tps_growth=2.5, scan_growth_rows=2e6, ramp_s=60.0)
        return simulate_telemetry(
            tpcc_workload(),
            duration_s=240,
            anomalies=[ScheduledAnomaly(drift, 120.0, 240.0)],
            seed=42,
        )

    def test_telemetry_shows_gradual_rise(self, drift_run):
        dataset, _ = drift_run
        scans = dataset.column("mysql.handler_read_rnd_next")
        before = scans[:120].mean()
        mid = scans[140:160].mean()
        late = scans[200:240].mean()
        assert before < mid < late

    def test_predicates_found_for_marked_drift(self, drift_run):
        dataset, spec = drift_run
        explanation = DBSherlock().explain(dataset, spec)
        attrs = set(explanation.predicates.attributes)
        assert "mysql.handler_read_rnd_next" in attrs

    def test_drift_challenges_median_detector(self, drift_run):
        # gradual onsets blur the detected boundary (or are missed) —
        # exactly the future-work challenge the paper names; a perfect
        # match would make this test fail and that would be interesting
        dataset, spec = drift_run
        detection = AnomalyDetector().detect(dataset)
        truth = spec.abnormal[0]
        if detection.found:
            region = max(detection.regions, key=lambda r: r.duration)
            boundary_error = abs(region.start - truth.start)
            assert boundary_error >= 0.0  # smoke: no crash, boundary recorded
