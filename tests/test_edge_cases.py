"""Edge-case tests across the core pipeline.

Exercises the awkward corners: explicit normal regions, constant
attributes, single-row regions, confidence variants, and generator
behaviour on degenerate inputs.
"""

import numpy as np
import pytest

from repro.core.causal import CausalModel
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.core.predicates import CategoricalPredicate, NumericPredicate
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec


def dataset_with_gap():
    """Rows 0-39 normal, 40-59 ignored, 60-89 abnormal, 90-119 ignored."""
    values = np.concatenate([
        np.full(40, 10.0),
        np.full(20, 25.0),   # ignored middle — would confuse naive labeling
        np.full(30, 50.0),
        np.full(30, 25.0),   # ignored tail
    ])
    ds = Dataset(np.arange(120, dtype=float), numeric={"m": values})
    spec = RegionSpec(
        abnormal=[Region(60.0, 89.0)],
        normal=[Region(0.0, 39.0)],
    )
    return ds, spec


class TestExplicitNormalRegions:
    def test_ignored_rows_do_not_poison_labels(self):
        ds, spec = dataset_with_gap()
        conj = PredicateGenerator().generate(ds, spec, attributes=["m"])
        assert len(conj) == 1
        pred = conj.predicates[0]
        # the ignored 25.0 rows must not drag the bound below them
        assert pred.direction == "gt"
        assert pred.lower >= 25.0

    def test_confidence_with_explicit_normal(self):
        ds, spec = dataset_with_gap()
        model = CausalModel("X", [NumericPredicate("m", lower=30.0)])
        assert model.confidence(ds, spec) == pytest.approx(1.0)


class TestDegenerateInputs:
    def test_single_abnormal_row(self):
        values = np.concatenate([np.full(100, 10.0), [99.0]])
        ds = Dataset(np.arange(101, dtype=float), numeric={"m": values})
        spec = RegionSpec(abnormal=[Region(100.0, 100.0)])
        conj = PredicateGenerator().generate(ds, spec, attributes=["m"])
        # the lone abnormal partition is deemed significant (Section 4.3)
        assert len(conj) == 1
        assert conj.predicates[0].direction == "gt"

    def test_single_normal_row(self):
        values = np.concatenate([[10.0], np.full(100, 99.0)])
        ds = Dataset(np.arange(101, dtype=float), numeric={"m": values})
        spec = RegionSpec(abnormal=[Region(1.0, 100.0)])
        conj = PredicateGenerator().generate(ds, spec, attributes=["m"])
        assert len(conj) == 1

    def test_two_row_dataset(self):
        ds = Dataset([0.0, 1.0], numeric={"m": [1.0, 100.0]})
        spec = RegionSpec(abnormal=[Region(1.0, 1.0)])
        conj = PredicateGenerator().generate(ds, spec, attributes=["m"])
        assert len(conj) == 1

    def test_all_attributes_constant(self):
        n = 50
        ds = Dataset(
            np.arange(n, dtype=float),
            numeric={"a": np.ones(n), "b": np.full(n, 7.0)},
        )
        spec = RegionSpec(abnormal=[Region(20.0, 29.0)])
        conj = PredicateGenerator().generate(ds, spec)
        assert len(conj) == 0

    def test_identical_abnormal_and_normal_distributions(self):
        rng = np.random.default_rng(0)
        n = 200
        ds = Dataset(
            np.arange(n, dtype=float), numeric={"m": rng.normal(10, 1, n)}
        )
        spec = RegionSpec(abnormal=[Region(100.0, 149.0)])
        conj = PredicateGenerator().generate(ds, spec, attributes=["m"])
        # indistinguishable regions must not produce confident predicates
        assert len(conj) == 0


class TestConfidenceVariants:
    def step(self):
        values = np.asarray([10.0] * 60 + [50.0] * 30 + [10.0] * 30)
        return (
            Dataset(np.arange(120, dtype=float), numeric={"m": values}),
            RegionSpec(abnormal=[Region(60.0, 89.0)]),
        )

    def test_filtering_toggle(self):
        ds, spec = self.step()
        model = CausalModel("X", [NumericPredicate("m", lower=30.0)])
        with_filter = model.confidence(ds, spec, apply_filtering=True)
        without = model.confidence(ds, spec, apply_filtering=False)
        assert with_filter == pytest.approx(without, abs=0.1)

    def test_partition_count_invariance_on_clean_step(self):
        ds, spec = self.step()
        model = CausalModel("X", [NumericPredicate("m", lower=30.0)])
        for n_partitions in (50, 250, 1000):
            assert model.confidence(ds, spec, n_partitions) == pytest.approx(
                1.0
            )

    def test_categorical_only_model(self):
        values = np.asarray(["a"] * 60 + ["b"] * 30 + ["a"] * 30, dtype=object)
        ds = Dataset(np.arange(120, dtype=float), categorical={"c": values})
        spec = RegionSpec(abnormal=[Region(60.0, 89.0)])
        model = CausalModel("X", [CategoricalPredicate.of("c", ["b"])])
        assert model.confidence(ds, spec) == pytest.approx(1.0)

    def test_predicate_on_all_ignored_attribute(self):
        ds, spec = self.step()
        model = CausalModel("X", [NumericPredicate("ghost", lower=0.0)])
        assert model.confidence(ds, spec) == 0.0


class TestGeneratorBoundaryDirections:
    def test_spike_to_maximum_gives_gt(self):
        values = np.asarray([10.0] * 90 + [100.0] * 30)
        ds = Dataset(np.arange(120, dtype=float), numeric={"m": values})
        spec = RegionSpec(abnormal=[Region(90.0, 119.0)])
        pred = PredicateGenerator().generate(ds, spec, attributes=["m"]).predicates[0]
        assert pred.direction == "gt"

    def test_drop_to_minimum_gives_lt(self):
        values = np.asarray([100.0] * 90 + [10.0] * 30)
        ds = Dataset(np.arange(120, dtype=float), numeric={"m": values})
        spec = RegionSpec(abnormal=[Region(90.0, 119.0)])
        pred = PredicateGenerator().generate(ds, spec, attributes=["m"]).predicates[0]
        assert pred.direction == "lt"

    def test_predicate_bounds_exclude_normal_values(self):
        values = np.asarray([10.0] * 90 + [100.0] * 30)
        ds = Dataset(np.arange(120, dtype=float), numeric={"m": values})
        spec = RegionSpec(abnormal=[Region(90.0, 119.0)])
        pred = PredicateGenerator().generate(ds, spec, attributes=["m"]).predicates[0]
        assert not pred.evaluate_values(np.asarray([10.0])).any()
        assert pred.evaluate_values(np.asarray([100.0])).all()
