"""Unit tests for the OLTP server simulator substrate."""

import numpy as np
import pytest

from repro.engine.locks import LockModel
from repro.engine.metrics import MetricCatalog
from repro.engine.resources import ServerConfig, mm1_latency_factor
from repro.engine.server import DatabaseServer, TickModifiers
from repro.workload.tpcc import tpcc_workload


def tick(server=None, modifiers=TickModifiers(), seed=0, t=0.0):
    server = server or DatabaseServer(tpcc_workload())
    return server.tick(t, modifiers, np.random.default_rng(seed))


class TestQueueing:
    def test_idle_factor_is_one(self):
        assert mm1_latency_factor(0.0) == 1.0

    def test_half_utilisation_doubles(self):
        assert mm1_latency_factor(0.5) == pytest.approx(2.0)

    def test_saturation_capped(self):
        assert mm1_latency_factor(5.0) == pytest.approx(1.0 / 0.03)

    def test_monotone(self):
        factors = [mm1_latency_factor(u) for u in (0.1, 0.5, 0.9)]
        assert factors == sorted(factors)


class TestServerConfig:
    def test_cpu_capacity(self):
        assert ServerConfig(n_cores=4).cpu_capacity_ms == 4000.0

    def test_buffer_pool_size(self):
        cfg = ServerConfig(buffer_pool_pages=1024, page_size_kb=16.0)
        assert cfg.buffer_pool_mb == 16.0

    def test_miss_rate_grows_with_scale(self):
        cfg = ServerConfig()
        assert cfg.base_miss_rate(2000.0) > cfg.base_miss_rate(100.0)

    def test_miss_rate_bounded(self):
        assert ServerConfig().base_miss_rate(1e9) <= 0.25


class TestLockModel:
    def test_uniform_access_low_conflict(self):
        model = LockModel(scale_factor=500.0, hot_fraction=1.0)
        assert model.conflict_probability(10.0, 10.0) < 0.001

    def test_hot_spot_high_conflict(self):
        model = LockModel(scale_factor=500.0, hot_fraction=2.5e-5)
        assert model.conflict_probability(20.0, 10.0) > 0.9

    def test_wait_time_grows_with_skew(self):
        uniform = LockModel(500.0, 1.0).wait_time_ms(900.0, 5.0, 8.0, 2.0)
        skewed = LockModel(500.0, 2e-6).wait_time_ms(900.0, 5.0, 8.0, 2.0)
        assert skewed > uniform * 100

    def test_hot_row_utilisation(self):
        model = LockModel(scale_factor=1.0, hot_fraction=1.0)  # 1000 keys
        rho = model.hot_row_utilisation(tps=100.0, lock_rows=10.0,
                                        holding_time_ms=10.0)
        assert rho == pytest.approx(0.01)

    def test_zero_concurrency_no_conflict(self):
        model = LockModel(500.0, 1.0)
        assert model.conflict_probability(1.0, 10.0) == 0.0


class TestServerTick:
    def test_steady_state_is_reasonable(self):
        state = tick()
        assert 500 < state.completed_tps <= 900
        assert 0.5 < state.avg_latency_ms < 20.0
        assert 0.0 < state.cpu_util < 0.5

    def test_txn_counts_sum_to_throughput(self):
        state = tick()
        assert sum(state.txn_counts.values()) == pytest.approx(
            round(state.completed_tps), abs=1.0
        )

    def test_deterministic_given_seed(self):
        s1, s2 = tick(seed=5), tick(seed=5)
        assert s1.completed_tps == s2.completed_tps
        assert s1.txn_counts == s2.txn_counts

    def test_external_cpu_raises_latency(self):
        base = tick()
        stressed = tick(modifiers=TickModifiers(external_cpu_cores=3.8))
        assert stressed.avg_latency_ms > base.avg_latency_ms * 2
        assert stressed.cpu_util > 0.9
        # the DBMS's own CPU does not rise (the CPU-saturation signature)
        assert stressed.db_cpu_cores <= base.db_cpu_cores * 1.2

    def test_io_saturation_raises_iowait(self):
        base = tick()
        stressed = tick(modifiers=TickModifiers(external_disk_ops=2300.0))
        assert stressed.disk_util > 0.9
        assert stressed.cpu_iowait_frac > base.cpu_iowait_frac * 2

    def test_network_delay_throttles_throughput(self):
        base = tick()
        congested = tick(modifiers=TickModifiers(network_delay_ms=300.0))
        assert congested.completed_tps < base.completed_tps * 0.6
        assert congested.avg_latency_ms > 250.0
        assert congested.net_send_mb < base.net_send_mb

    def test_workload_spike_raises_concurrency(self):
        base = tick()
        spiked = tick(
            modifiers=TickModifiers(tps_multiplier=5.0, added_terminals=128)
        )
        assert spiked.completed_tps > base.completed_tps * 2
        assert spiked.concurrency > base.concurrency * 2
        assert spiked.lock_waits > base.lock_waits

    def test_lock_hotspot_explodes_lock_waits(self):
        base = tick()
        contended = tick(
            modifiers=TickModifiers(hot_fraction_override=2e-6)
        )
        assert contended.lock_wait_ms_per_txn > base.lock_wait_ms_per_txn * 50
        assert contended.avg_latency_ms > base.avg_latency_ms * 3

    def test_backup_stream_hits_disk_and_network(self):
        base = tick()
        backup = tick(modifiers=TickModifiers(dump_read_mb=85.0, dump_net_mb=30.0))
        assert backup.disk_read_mb > base.disk_read_mb + 50.0
        assert backup.net_send_mb > base.net_send_mb + 20.0

    def test_bulk_insert_hits_log_and_inserts(self):
        base = tick()
        restore = tick(modifiers=TickModifiers(bulk_insert_rows=22000.0))
        assert restore.rows_inserted > base.rows_inserted + 10000.0
        assert restore.log_writes > base.log_writes * 2

    def test_flush_storm_spikes_flushes(self):
        base = tick()
        flushed = tick(modifiers=TickModifiers(flush_pages=3200.0))
        assert flushed.pages_flushed > base.pages_flushed + 2000.0

    def test_scan_stream_raises_db_cpu(self):
        base = tick()
        scanning = tick(
            modifiers=TickModifiers(scan_cpu_cores=1.6, scan_rows_per_s=2.5e6)
        )
        assert scanning.db_cpu_cores > base.db_cpu_cores + 1.0
        assert scanning.scan_rows == pytest.approx(2.5e6)

    def test_dirty_backlog_accumulates_under_write_pressure(self):
        server = DatabaseServer(tpcc_workload())
        rng = np.random.default_rng(0)
        heavy = TickModifiers(bulk_insert_rows=60000.0)
        first = server.tick(0.0, heavy, rng)
        for t in range(1, 6):
            state = server.tick(float(t), heavy, rng)
        assert state.dirty_pages > first.dirty_pages


class TestModifierCombination:
    def test_additive_fields_sum(self):
        combined = TickModifiers(external_cpu_cores=1.0).combine(
            TickModifiers(external_cpu_cores=2.0)
        )
        assert combined.external_cpu_cores == 3.0

    def test_multiplicative_fields_multiply(self):
        combined = TickModifiers(tps_multiplier=2.0).combine(
            TickModifiers(tps_multiplier=3.0)
        )
        assert combined.tps_multiplier == 6.0

    def test_hot_fraction_takes_minimum(self):
        combined = TickModifiers(hot_fraction_override=0.5).combine(
            TickModifiers(hot_fraction_override=0.1)
        )
        assert combined.hot_fraction_override == 0.1

    def test_none_hot_fraction_passthrough(self):
        combined = TickModifiers().combine(
            TickModifiers(hot_fraction_override=0.2)
        )
        assert combined.hot_fraction_override == 0.2

    def test_identity_combination(self):
        base = TickModifiers(network_delay_ms=300.0)
        assert base.combine(TickModifiers()) == base


class TestMetricCatalog:
    def catalog(self):
        return MetricCatalog(tpcc_workload().type_names)

    def test_catalogue_size(self):
        # the paper cites MySQL's 260+ statistics; we model well over 100
        assert len(self.catalog().numeric_names) >= 120

    def test_no_duplicate_names(self):
        names = self.catalog().numeric_names
        assert len(names) == len(set(names))

    def test_emission_covers_catalogue(self):
        catalog = self.catalog()
        state = tick()
        row = catalog.emit_numeric(state, np.random.default_rng(0))
        assert set(row) == set(catalog.numeric_names)

    def test_counters_non_negative(self):
        catalog = self.catalog()
        state = tick()
        row = catalog.emit_numeric(state, np.random.default_rng(0))
        assert all(v >= 0 for v in row.values())

    def test_categoricals_include_invariants(self):
        catalog = self.catalog()
        cats = catalog.emit_categorical(tick())
        assert cats["mysql.version"] == "5.6.20"
        assert cats["workload.dominant_txn"] in tpcc_workload().type_names

    def test_noise_scale_zero_is_deterministic(self):
        catalog = MetricCatalog(tpcc_workload().type_names, noise_scale=0.0)
        state = tick()
        r1 = catalog.emit_numeric(state, np.random.default_rng(1))
        r2 = catalog.emit_numeric(state, np.random.default_rng(2))
        assert r1 == r2

    def test_cpu_usage_tracks_state(self):
        catalog = MetricCatalog(tpcc_workload().type_names, noise_scale=0.0)
        state = tick(modifiers=TickModifiers(external_cpu_cores=3.8))
        row = catalog.emit_numeric(state, np.random.default_rng(0))
        assert row["os.cpu_usage"] > 90.0
