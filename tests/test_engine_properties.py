"""Property-based tests for the OLTP simulator's physical sanity.

Whatever perturbation an injector throws at a tick, the server must
respond with physically meaningful numbers: finite positive latency,
throughput within the offered load, utilisations in [0, 1], and
monotone responses to added load.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.server import DatabaseServer, TickModifiers
from repro.workload.tpcc import tpcc_workload
from repro.workload.tpce import tpce_workload

modifier_strategy = st.builds(
    TickModifiers,
    tps_multiplier=st.floats(0.1, 10.0),
    added_terminals=st.integers(0, 512),
    external_cpu_cores=st.floats(0.0, 8.0),
    external_disk_ops=st.floats(0.0, 10_000.0),
    external_net_mb=st.floats(0.0, 100.0),
    scan_rows_per_s=st.floats(0.0, 1e7),
    scan_cpu_cores=st.floats(0.0, 4.0),
    write_amplification=st.floats(1.0, 10.0),
    bulk_insert_rows=st.floats(0.0, 100_000.0),
    dump_read_mb=st.floats(0.0, 200.0),
    dump_net_mb=st.floats(0.0, 60.0),
    flush_pages=st.floats(0.0, 10_000.0),
    network_delay_ms=st.floats(0.0, 1000.0),
    hot_fraction_override=st.one_of(st.none(), st.floats(1e-6, 1.0)),
    buffer_miss_boost=st.floats(0.0, 0.5),
)


def tick(modifiers, workload=None, seed=0):
    server = DatabaseServer(workload or tpcc_workload())
    return server.tick(0.0, modifiers, np.random.default_rng(seed))


class TestPhysicalSanity:
    @settings(deadline=None, max_examples=60)
    @given(modifier_strategy)
    def test_latency_finite_positive(self, modifiers):
        state = tick(modifiers)
        assert math.isfinite(state.avg_latency_ms)
        assert state.avg_latency_ms > 0.0

    @settings(deadline=None, max_examples=60)
    @given(modifier_strategy)
    def test_throughput_bounded(self, modifiers):
        state = tick(modifiers)
        assert 0.0 <= state.completed_tps <= state.offered_tps + 1e-9

    @settings(deadline=None, max_examples=60)
    @given(modifier_strategy)
    def test_utilisations_in_unit_interval(self, modifiers):
        state = tick(modifiers)
        for value in (state.cpu_util, state.disk_util, state.net_util):
            assert 0.0 <= value <= 1.0
        assert 0.0 <= state.buffer_hit_rate <= 1.0

    @settings(deadline=None, max_examples=60)
    @given(modifier_strategy)
    def test_counters_non_negative(self, modifiers):
        state = tick(modifiers)
        for value in (
            state.disk_read_ops,
            state.disk_write_ops,
            state.net_send_mb,
            state.net_recv_mb,
            state.lock_waits,
            state.rows_inserted,
            state.rows_updated,
            state.rows_deleted,
            state.page_faults,
        ):
            assert value >= 0.0

    @settings(deadline=None, max_examples=60)
    @given(modifier_strategy)
    def test_txn_counts_consistent(self, modifiers):
        state = tick(modifiers)
        total = sum(state.txn_counts.values())
        assert total == pytest.approx(round(state.completed_tps), abs=1.0)

    @settings(deadline=None, max_examples=30)
    @given(modifier_strategy)
    def test_tpce_workload_equally_sane(self, modifiers):
        state = tick(modifiers, workload=tpce_workload())
        assert math.isfinite(state.avg_latency_ms)
        assert state.avg_latency_ms > 0.0


class TestMonotoneResponses:
    @settings(deadline=None, max_examples=30)
    @given(st.floats(0.0, 3.5))
    def test_more_external_cpu_never_reduces_latency(self, cores):
        base = tick(TickModifiers())
        loaded = tick(TickModifiers(external_cpu_cores=cores))
        assert loaded.avg_latency_ms >= base.avg_latency_ms - 0.3

    @settings(deadline=None, max_examples=30)
    @given(st.floats(0.0, 500.0))
    def test_network_delay_passes_through(self, delay):
        state = tick(TickModifiers(network_delay_ms=delay))
        assert state.avg_latency_ms >= delay * 0.9

    @settings(deadline=None, max_examples=30)
    @given(st.floats(1.0, 8.0))
    def test_write_amplification_never_reduces_disk_writes(self, amp):
        base = tick(TickModifiers())
        amplified = tick(TickModifiers(write_amplification=amp))
        assert amplified.disk_write_ops >= base.disk_write_ops - 1.0


class TestModifierAlgebra:
    @settings(deadline=None, max_examples=60)
    @given(modifier_strategy)
    def test_identity_combination(self, modifiers):
        assert modifiers.combine(TickModifiers()) == modifiers
        assert TickModifiers().combine(modifiers) == modifiers

    @settings(deadline=None, max_examples=60)
    @given(modifier_strategy, modifier_strategy)
    def test_combination_commutative_on_additive_fields(self, a, b):
        ab, ba = a.combine(b), b.combine(a)
        assert ab.external_cpu_cores == pytest.approx(ba.external_cpu_cores)
        assert ab.flush_pages == pytest.approx(ba.flush_pages)
        assert ab.network_delay_ms == pytest.approx(ba.network_delay_ms)
        assert ab.hot_fraction_override == ba.hot_fraction_override
