"""Unit tests for evaluation metrics and the experiment harness."""

import numpy as np
import pytest

from repro.core.causal import CausalModel
from repro.core.predicates import Conjunction, NumericPredicate
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec
from repro.eval.harness import (
    AnomalyDataset,
    build_merged_models,
    build_model,
    build_suite,
    rank_models,
    simulate_run,
)
from repro.core.predicates import NumericPredicate as NP
from repro.eval.metrics import (
    MeanScores,
    PredicateScores,
    margin_of_confidence,
    score_predicates,
    score_predicates_mean,
    topk_contains,
)


def step():
    values = np.asarray([1.0] * 60 + [10.0] * 30 + [1.0] * 30)
    return (
        Dataset(np.arange(120, dtype=float), numeric={"m": values}),
        RegionSpec(abnormal=[Region(60.0, 89.0)]),
    )


class TestPredicateScores:
    def test_perfect_scores(self):
        ds, spec = step()
        conj = Conjunction([NumericPredicate("m", lower=5.0)])
        scores = score_predicates(conj, ds, spec)
        assert scores.precision == 1.0 and scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_partial_recall(self):
        ds, spec = step()
        conj = Conjunction([NumericPredicate("m", lower=100.0)])
        scores = score_predicates(conj, ds, spec)
        assert scores.recall == 0.0 and scores.f1 == 0.0

    def test_low_precision(self):
        ds, spec = step()
        conj = Conjunction([NumericPredicate("m", lower=0.0)])
        scores = score_predicates(conj, ds, spec)
        assert scores.precision == pytest.approx(30 / 120)
        assert scores.recall == 1.0

    def test_empty_conjunction_scores_zero(self):
        ds, spec = step()
        assert score_predicates(Conjunction(), ds, spec).f1 == 0.0

    def test_f1_harmonic_mean(self):
        scores = PredicateScores(precision=0.5, recall=1.0)
        assert scores.f1 == pytest.approx(2 / 3)


class TestMeanScores:
    def test_mean_over_predicates(self):
        ds, spec = step()
        good = NP("m", lower=5.0)       # perfect: P=1, R=1, F1=1
        useless = NP("m", lower=100.0)  # matches nothing: 0, 0, 0
        scores = score_predicates_mean([good, useless], ds, spec)
        assert scores.precision == pytest.approx(0.5)
        assert scores.recall == pytest.approx(0.5)
        assert scores.f1 == pytest.approx(0.5)

    def test_f1_is_mean_of_per_predicate_f1(self):
        # mean-of-F1s differs from F1-of-means; the former is reported
        ds, spec = step()
        half = NP("m", lower=0.5)  # P = 30/120, R = 1 -> F1 = 0.4
        scores = score_predicates_mean([half], ds, spec)
        assert scores.f1 == pytest.approx(0.4)

    def test_missing_attribute_counts_as_zero(self):
        ds, spec = step()
        scores = score_predicates_mean(
            [NP("m", lower=5.0), NP("ghost", lower=0.0)], ds, spec
        )
        assert scores.recall == pytest.approx(0.5)

    def test_empty_predicates(self):
        ds, spec = step()
        scores = score_predicates_mean([], ds, spec)
        assert scores == MeanScores(0.0, 0.0, 0.0)

    def test_conjunction_stricter_than_mean(self):
        ds, spec = step()
        preds = [NP("m", lower=5.0), NP("m2", lower=100.0)]
        ds2 = Dataset(
            ds.timestamps,
            numeric={"m": ds.column("m"), "m2": ds.column("m")},
        )
        conj_f1 = score_predicates(Conjunction(
            [NP("m", lower=5.0), NP("m2", lower=100.0)]
        ), ds2, spec).f1
        mean_f1 = score_predicates_mean(
            [NP("m", lower=5.0), NP("m2", lower=100.0)], ds2, spec
        ).f1
        assert conj_f1 <= mean_f1


class TestRankingMetrics:
    def scores(self):
        return [("A", 0.9), ("B", 0.5), ("C", 0.1)]

    def test_margin_when_correct_leads(self):
        assert margin_of_confidence(self.scores(), "A") == pytest.approx(0.4)

    def test_margin_negative_when_correct_trails(self):
        assert margin_of_confidence(self.scores(), "B") == pytest.approx(-0.4)

    def test_margin_single_model(self):
        assert margin_of_confidence([("A", 0.7)], "A") == pytest.approx(0.7)

    def test_margin_missing_cause_rejected(self):
        with pytest.raises(ValueError):
            margin_of_confidence(self.scores(), "Z")

    def test_topk(self):
        assert topk_contains(self.scores(), "B", 2)
        assert not topk_contains(self.scores(), "C", 2)

    def test_topk_unsorted_input(self):
        scores = [("B", 0.5), ("A", 0.9)]
        assert topk_contains(scores, "A", 1)


class TestHarness:
    def test_simulate_run_layout(self):
        ds, spec, cause = simulate_run(
            "workload_spike", duration_s=30, normal_s=60, seed=1
        )
        assert ds.n_rows == 90
        assert cause == "Workload Spike"
        region = spec.abnormal[0]
        assert region.start == 30.0 and region.end == 59.0

    def test_simulate_run_custom_start(self):
        ds, spec, _ = simulate_run(
            "workload_spike", duration_s=30, normal_s=60, start_s=10, seed=1
        )
        assert spec.abnormal[0].start == 10.0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            simulate_run("workload_spike", workload="oracle")

    def test_build_suite_structure(self):
        suite = build_suite(
            durations=[30, 40], anomaly_keys=["cpu_saturation"], seed=0
        )
        assert list(suite) == ["CPU Saturation"]
        runs = suite["CPU Saturation"]
        assert [r.duration_s for r in runs] == [30, 40]
        assert all(isinstance(r, AnomalyDataset) for r in runs)

    def test_suite_seeds_unique(self):
        suite = build_suite(
            durations=[30, 40],
            anomaly_keys=["cpu_saturation", "io_saturation"],
            seed=0,
        )
        seeds = [r.seed for runs in suite.values() for r in runs]
        assert len(set(seeds)) == len(seeds)

    def test_build_model_uses_theta(self):
        ds, spec, cause = simulate_run("cpu_saturation", 30, seed=2, normal_s=60)
        run = AnomalyDataset(ds, spec, cause, "cpu_saturation", 30, 2)
        loose = build_model(run, theta=0.05)
        strict = build_model(run, theta=0.5)
        assert len(loose.predicates) >= len(strict.predicates)

    def test_rank_models_orders(self):
        ds, spec, cause = simulate_run("cpu_saturation", 30, seed=3, normal_s=60)
        good = CausalModel(
            "good", [NumericPredicate("os.cpu_usage", lower=60.0)]
        )
        bad = CausalModel(
            "bad", [NumericPredicate("os.cpu_usage", upper=60.0)]
        )
        ranked = rank_models([bad, good], ds, spec)
        assert ranked[0][0] == "good"

    def test_build_merged_models(self):
        suite = build_suite(
            durations=[30, 40, 50], anomaly_keys=["cpu_saturation"], seed=5
        )
        models = build_merged_models(
            suite, {"CPU Saturation": [0, 1]}, theta=0.05
        )
        assert len(models) == 1
        assert models[0].n_merged == 2
