"""Smoke tests: every shipped example runs to completion.

Examples are documentation that executes; these tests keep them honest.
Each runs in a subprocess exactly as a user would invoke it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "dba_workflow.py",
        "auto_detection.py",
        "telemetry_export.py",
        "auto_remediation.py",
        "workload_drift.py",
    } <= set(EXAMPLES)
