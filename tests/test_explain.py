"""Unit tests for the DBSherlock facade (Figure 2 workflow)."""

import numpy as np
import pytest

from repro.core.explain import DBSherlock, Explanation
from repro.core.generator import GeneratorConfig
from repro.core.knowledge import DomainRule
from repro.core.predicates import Conjunction, NumericPredicate
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec


def incident(seed=0, n=240, start=120, width=40):
    """Correlated cause/effect attributes with a step anomaly."""
    rng = np.random.default_rng(seed)
    cause = np.full(n, 10.0) + rng.normal(0, 0.3, n)
    cause[start : start + width] = 40.0 + rng.normal(0, 0.3, width)
    effect = cause * 2.0 + rng.normal(0, 0.1, n)
    other = np.full(n, 5.0) + rng.normal(0, 0.2, n)
    ds = Dataset(
        np.arange(n, dtype=float),
        numeric={"cause_m": cause, "effect_m": effect, "other_m": other},
    )
    spec = RegionSpec(abnormal=[Region(float(start), float(start + width - 1))])
    return ds, spec


class TestExplain:
    def test_returns_predicates(self):
        ds, spec = incident()
        explanation = DBSherlock().explain(ds, spec)
        attrs = set(explanation.predicates.attributes)
        assert "cause_m" in attrs and "effect_m" in attrs

    def test_domain_rules_prune_effects(self):
        ds, spec = incident()
        sherlock = DBSherlock(rules=[DomainRule("cause_m", "effect_m")])
        explanation = sherlock.explain(ds, spec)
        assert "effect_m" not in explanation.predicates.attributes
        assert [p.attr for p in explanation.pruned] == ["effect_m"]

    def test_no_causes_without_models(self):
        ds, spec = incident()
        explanation = DBSherlock().explain(ds, spec)
        assert explanation.causes == []
        assert explanation.top_cause is None

    def test_attribute_subset(self):
        ds, spec = incident()
        explanation = DBSherlock().explain(ds, spec, attributes=["other_m"])
        assert len(explanation.predicates) == 0

    def test_str_rendering(self):
        explanation = Explanation(
            predicates=Conjunction([NumericPredicate("a", lower=1.0)]),
            causes=[("X", 0.9)],
        )
        text = str(explanation)
        assert "a > 1" in text and "X" in text


class TestFeedbackLoop:
    def test_feedback_creates_model(self):
        ds, spec = incident()
        sherlock = DBSherlock()
        explanation = sherlock.explain(ds, spec)
        model = sherlock.feedback("Rogue Cause", explanation)
        assert model.cause == "Rogue Cause"
        assert sherlock.store.get("Rogue Cause") is not None

    def test_feedback_merges_repeat_diagnoses(self):
        sherlock = DBSherlock()
        for seed in (1, 2):
            ds, spec = incident(seed=seed)
            explanation = sherlock.explain(ds, spec)
            model = sherlock.feedback("Rogue Cause", explanation)
        assert model.n_merged == 2

    def test_known_cause_ranked_on_new_incident(self):
        sherlock = DBSherlock()
        ds, spec = incident(seed=1)
        sherlock.feedback("Rogue Cause", sherlock.explain(ds, spec))
        ds2, spec2 = incident(seed=9)
        explanation = sherlock.explain(ds2, spec2)
        assert explanation.top_cause == "Rogue Cause"
        assert explanation.causes[0][1] > 0.5

    def test_lambda_threshold_hides_weak_causes(self):
        sherlock = DBSherlock(lambda_threshold=2.0)  # impossible bar
        ds, spec = incident(seed=1)
        sherlock.feedback("Rogue Cause", sherlock.explain(ds, spec))
        explanation = sherlock.explain(ds, spec)
        assert explanation.causes == []
        assert explanation.all_cause_scores  # still visible for evaluation

    def test_diagnose_top_k(self):
        sherlock = DBSherlock()
        ds, spec = incident(seed=1)
        sherlock.feedback("A", sherlock.explain(ds, spec))
        sherlock.feedback("B", Explanation(predicates=Conjunction()))
        top = sherlock.diagnose(ds, spec, top_k=1)
        assert len(top) == 1 and top[0][0] == "A"


class TestAutoDetectPath:
    def test_explain_without_spec_uses_detector(self):
        ds, spec = incident(n=600, start=300, width=50)
        explanation = DBSherlock().explain(ds)
        assert len(explanation.predicates) > 0

    def test_detector_miss_returns_empty_explanation(self):
        n = 300
        ds = Dataset(np.arange(n, dtype=float), numeric={"flat": np.ones(n)})
        explanation = DBSherlock().explain(ds)
        assert len(explanation.predicates) == 0

    def test_config_theta_respected(self):
        ds, spec = incident()
        strict = DBSherlock(config=GeneratorConfig(theta=0.99))
        assert len(strict.explain(ds, spec).predicates) == 0
