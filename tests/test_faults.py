"""Tests for the fault-injection subsystem (``repro.faults``).

The load-bearing properties: every plan is bitwise deterministic under a
fixed seed on both consumption paths (table and stream), every injector
is an exact no-op at rate/magnitude 0, injectors compose in delivery
order, and the NaN-hardened core pipeline degrades gracefully (batch ==
serial with NaN present, neutral spaces for unusable columns).
"""

import numpy as np
import pytest

from repro.core.anomaly import impute_missing, potential_power
from repro.core.partition import Label, NumericPartitionSpace
from repro.core.separation import normalize_values
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec
from repro.faults import (
    ClockSkew,
    CollectorCrash,
    CollectorFault,
    DropTicks,
    DuplicateTicks,
    FaultPlan,
    NaNValues,
    SchemaDrift,
    SpikeCorruption,
    StuckAtCounter,
)
from repro.perf.batch import label_numeric_batch, potential_power_batch


def make_dataset(n=120, seed=3, name="clean"):
    rng = np.random.default_rng(seed)
    return Dataset(
        np.arange(n, dtype=float),
        numeric={
            "cpu": rng.normal(50.0, 5.0, size=n),
            "io": rng.normal(200.0, 20.0, size=n),
            "lat": rng.normal(10.0, 1.0, size=n),
        },
        categorical={"mode": np.asarray(["steady"] * n, dtype=object)},
        name=name,
    )


def make_ticks(n=120, seed=3):
    ds = make_dataset(n, seed)
    num = {a: ds.column(a) for a in ds.numeric_attributes}
    cat = {a: ds.column(a) for a in ds.categorical_attributes}
    for i, t in enumerate(ds.timestamps):
        yield (
            float(t),
            {a: float(num[a][i]) for a in num},
            {a: cat[a][i] for a in cat},
        )


def datasets_equal(a: Dataset, b: Dataset) -> bool:
    if not np.array_equal(a.timestamps, b.timestamps):
        return False
    if a.numeric_attributes != b.numeric_attributes:
        return False
    if a.categorical_attributes != b.categorical_attributes:
        return False
    for attr in a.numeric_attributes:
        if not np.array_equal(
            a.column(attr), b.column(attr), equal_nan=True
        ):
            return False
    for attr in a.categorical_attributes:
        if not np.array_equal(a.column(attr), b.column(attr)):
            return False
    return True


def drain(ticks):
    out = []
    for t, numeric, categorical in ticks:
        out.append((t, dict(numeric), dict(categorical)))
    return out


def ticks_equal(a, b) -> bool:
    """Elementwise tick equality treating NaN == NaN (dict ``==`` doesn't)."""
    if len(a) != len(b):
        return False
    for (ta, na, ca), (tb, nb, cb) in zip(a, b):
        if ta != tb or ca != cb or na.keys() != nb.keys():
            return False
        for attr in na:
            va, vb = na[attr], nb[attr]
            if va != vb and not (np.isnan(va) and np.isnan(vb)):
                return False
    return True


MODERATE = [
    DropTicks(0.05),
    DuplicateTicks(0.03),
    NaNValues(0.02),
    SpikeCorruption(0.01),
    StuckAtCounter(),
    ClockSkew(offset_s=1.5, drift=0.001),
]


# ---------------------------------------------------------------------------
# determinism + no-op properties
# ---------------------------------------------------------------------------
class TestPlanProperties:
    def test_table_path_deterministic(self):
        plan = FaultPlan(MODERATE, seed=11)
        a = plan.apply(make_dataset())
        b = plan.apply(make_dataset())
        assert datasets_equal(a, b)

    def test_stream_path_deterministic(self):
        plan = FaultPlan(MODERATE, seed=11)
        a = drain(plan.wrap(make_ticks()))
        b = drain(plan.wrap(make_ticks()))
        assert ticks_equal(a, b)

    def test_different_seeds_differ(self):
        ds = make_dataset()
        a = FaultPlan([NaNValues(0.1)], seed=1).apply(ds)
        b = FaultPlan([NaNValues(0.1)], seed=2).apply(ds)
        assert not datasets_equal(a, b)

    def test_zero_rate_plan_is_identity_on_table(self):
        plan = FaultPlan(
            [
                DropTicks(0.0),
                DuplicateTicks(0.0),
                NaNValues(0.0),
                SpikeCorruption(0.0),
                ClockSkew(),
                SchemaDrift(),
            ],
            seed=5,
        )
        ds = make_dataset()
        assert datasets_equal(plan.apply(ds), ds)

    def test_zero_rate_plan_is_identity_on_stream(self):
        plan = FaultPlan(
            [DropTicks(0.0), DuplicateTicks(0.0), NaNValues(0.0)], seed=5
        )
        assert drain(plan.wrap(make_ticks())) == drain(make_ticks())

    def test_empty_plan_is_identity(self):
        plan = FaultPlan([], seed=0)
        assert datasets_equal(plan.apply(make_dataset()), make_dataset())
        assert drain(plan.wrap(make_ticks())) == drain(make_ticks())

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            DropTicks(1.5)
        with pytest.raises(ValueError):
            NaNValues(-0.1)
        with pytest.raises(ValueError):
            ClockSkew(drift=-1.0)

    def test_describe_lists_injectors(self):
        plan = FaultPlan([DropTicks(0.1), NaNValues(0.02)], seed=0)
        desc = plan.describe()
        assert len(desc) == 2
        assert "DropTicks" in desc[0] and "NaNValues" in desc[1]


# ---------------------------------------------------------------------------
# per-injector behavior
# ---------------------------------------------------------------------------
class TestInjectors:
    def test_drop_removes_rows(self):
        out = FaultPlan([DropTicks(0.3)], seed=1).apply(make_dataset())
        assert 0 < out.n_rows < 120

    def test_drop_stream_preserves_order(self):
        times = [t for t, _, _ in FaultPlan([DropTicks(0.3)], seed=1).wrap(make_ticks())]
        assert times == sorted(times)
        assert 0 < len(times) < 120

    def test_duplicate_repeats_payload_not_timestamp(self):
        out = FaultPlan([DuplicateTicks(0.5)], seed=2).apply(make_dataset())
        assert np.array_equal(out.timestamps, make_dataset().timestamps)
        col = out.column("cpu")
        assert (np.diff(col) == 0.0).any()  # some stale re-deliveries

    def test_nan_injects_nans(self):
        out = FaultPlan([NaNValues(0.1)], seed=3).apply(make_dataset())
        assert sum(
            int(np.isnan(out.column(a)).sum()) for a in out.numeric_attributes
        ) > 0

    def test_nan_respects_attr_filter(self):
        out = FaultPlan([NaNValues(0.2, attrs=["cpu"])], seed=3).apply(
            make_dataset()
        )
        assert np.isnan(out.column("cpu")).any()
        assert not np.isnan(out.column("io")).any()
        assert not np.isnan(out.column("lat")).any()

    def test_stuck_at_freezes_tail(self):
        out = FaultPlan(
            [StuckAtCounter(attr="io", onset=40)], seed=4
        ).apply(make_dataset())
        tail = out.column("io")[40:]
        assert np.all(tail == tail[0])
        head = out.column("io")[:40]
        assert not np.all(head == head[0])

    def test_stuck_at_stream_matches_table(self):
        plan = FaultPlan([StuckAtCounter(attr="io", onset=40)], seed=4)
        stream_io = [r["io"] for _, r, _ in plan.wrap(make_ticks())]
        table_io = plan.apply(make_dataset()).column("io")
        assert np.array_equal(np.asarray(stream_io), table_io)

    def test_spike_inflates_values(self):
        clean = make_dataset()
        out = FaultPlan([SpikeCorruption(0.05, magnitude=25.0)], seed=5).apply(
            clean
        )
        diff = out.column("cpu") - clean.column("cpu")
        assert (diff > 0).any() and (diff == 0).sum() > 100

    def test_clock_skew_remaps_time_and_spec(self):
        plan = FaultPlan([ClockSkew(offset_s=2.0, drift=0.01)], seed=6)
        out = plan.apply(make_dataset())
        assert out.timestamps[0] == pytest.approx(2.0)
        assert out.timestamps[100] == pytest.approx(2.0 + 1.01 * 100.0)
        spec = plan.transform_spec(RegionSpec.from_bounds([(10.0, 20.0)]))
        assert spec.abnormal[0].start == pytest.approx(2.0 + 1.01 * 10.0)
        assert spec.abnormal[0].end == pytest.approx(2.0 + 1.01 * 20.0)

    def test_schema_drift_renames_drops_adds(self):
        out = FaultPlan(
            [SchemaDrift(rename_rate=1.0, add_junk=2)], seed=7
        ).apply(make_dataset())
        assert all(
            a.startswith("v2.") or a.startswith("junk_")
            for a in out.numeric_attributes
        )
        assert "junk_0" in out.numeric_attributes
        dropped = FaultPlan([SchemaDrift(drop_rate=1.0)], seed=7).apply(
            make_dataset()
        )
        assert dropped.numeric_attributes == []

    def test_collector_crash_raises_after_at_tick(self):
        plan = FaultPlan([CollectorCrash(at_tick=30)], seed=8)
        delivered = []
        with pytest.raises(CollectorFault):
            for tick in plan.wrap(make_ticks()):
                delivered.append(tick)
        assert len(delivered) == 30

    def test_collector_crash_table_removes_downtime(self):
        out = FaultPlan([CollectorCrash(at_tick=30, down_s=5)], seed=8).apply(
            make_dataset()
        )
        assert out.n_rows == 115
        assert 30.0 not in out.timestamps and 34.0 not in out.timestamps

    def test_composition_applies_in_delivery_order(self):
        # skew first then drop: surviving timestamps are skewed ones
        plan = FaultPlan(
            [ClockSkew(offset_s=100.0), DropTicks(0.2)], seed=9
        )
        out = plan.apply(make_dataset())
        assert out.timestamps[0] >= 100.0
        assert out.n_rows < 120


# ---------------------------------------------------------------------------
# degraded-telemetry hardening in the core pipeline
# ---------------------------------------------------------------------------
class TestNaNHardening:
    def make_spec(self):
        return RegionSpec.from_bounds([(60.0, 90.0)])

    def test_labeling_survives_nan(self):
        ds = FaultPlan([NaNValues(0.05)], seed=10).apply(make_dataset())
        spec = self.make_spec()
        for attr in ds.numeric_attributes:
            space = NumericPartitionSpace.from_dataset(ds, attr, 250)
            labels = space.labeled_from_spec(ds, spec)
            assert set(np.unique(labels)) <= {
                int(Label.EMPTY),
                int(Label.NORMAL),
                int(Label.ABNORMAL),
            }

    def test_batch_labeling_matches_serial_with_nan(self):
        ds = FaultPlan([NaNValues(0.05)], seed=10).apply(make_dataset())
        spec = self.make_spec()
        attrs = ds.numeric_attributes
        abnormal = spec.abnormal_mask(ds)
        normal = spec.normal_mask(ds)
        batch = label_numeric_batch(ds, attrs, abnormal, normal, 250)
        for attr in attrs:
            space = NumericPartitionSpace.from_dataset(ds, attr, 250)
            serial = space.label(ds.column(attr), abnormal, normal)
            b_space, b_labels = batch[attr]
            assert b_space.n_partitions == space.n_partitions
            assert np.array_equal(serial, b_labels), attr

    def test_batch_potential_power_matches_serial_with_nan(self):
        ds = FaultPlan([NaNValues(0.08)], seed=12).apply(make_dataset())
        attrs = ds.numeric_attributes
        matrix = np.stack(
            [normalize_values(ds.column(a)) for a in attrs], axis=0
        )
        batch = potential_power_batch(matrix, window=20)
        for j, attr in enumerate(attrs):
            serial = potential_power(matrix[j], window=20)
            assert batch[j] == serial, attr

    def test_all_nan_column_yields_neutral_space(self):
        values = np.full(50, np.nan)
        space = NumericPartitionSpace("x", values, 250)
        assert space.n_partitions == 1
        idx = space.partition_indices(values)
        assert np.all(idx == -1)

    def test_partition_indices_nan_to_minus_one(self):
        values = np.array([1.0, np.nan, 3.0, np.nan, 5.0])
        space = NumericPartitionSpace("x", values, 4)
        idx = space.partition_indices(values)
        assert idx[1] == -1 and idx[3] == -1
        assert idx[0] >= 0 and idx[2] >= 0 and idx[4] >= 0

    def test_normalize_values_with_nan_preserves_clean_cells(self):
        values = np.array([0.0, np.nan, 5.0, 10.0])
        normalized = normalize_values(values)
        assert np.isnan(normalized[1])
        assert normalized[0] == 0.0 and normalized[3] == 1.0

    def test_normalize_values_zero_span_guard(self):
        values = np.array([4.0, np.nan, 4.0, 4.0])
        normalized = normalize_values(values)
        assert np.isnan(normalized[1])
        assert np.all(normalized[[0, 2, 3]] == 0.0)

    def test_impute_missing_fills_with_column_median(self):
        matrix = np.array([[1.0, np.nan], [3.0, 8.0], [np.nan, 10.0]])
        filled = impute_missing(matrix)
        assert filled[2, 0] == 2.0  # median of [1, 3]
        assert filled[0, 1] == 9.0  # median of [8, 10]
        assert not np.isnan(filled).any()

    def test_impute_missing_clean_matrix_untouched(self):
        matrix = np.arange(12.0).reshape(4, 3)
        filled = impute_missing(matrix)
        assert filled is matrix  # no copy on the clean path

    def test_impute_missing_all_nan_column_falls_back(self):
        matrix = np.array([[np.nan, 1.0], [np.nan, 2.0]])
        filled = impute_missing(matrix)
        assert np.all(filled[:, 0] == 0.5)
