"""Unit tests for partition filtering and gap filling (Sections 4.3-4.4)."""

import numpy as np
import pytest

from repro.core.filtering import abnormal_blocks, fill_gaps, filter_partitions
from repro.core.partition import Label

E, N, A = int(Label.EMPTY), int(Label.NORMAL), int(Label.ABNORMAL)


def labels(*xs):
    return np.asarray(xs, dtype=np.int64)


class TestFiltering:
    def test_agreeing_run_survives(self):
        # Scenario 1 of Figure 5: both neighbours share the label
        out = filter_partitions(labels(A, A, A, A))
        assert list(out) == [A, A, A, A]

    def test_disagreeing_middle_filtered(self):
        # two N's in the middle (not lone): both get filtered
        out = filter_partitions(labels(A, A, N, N, A, A))
        assert out[2] == E and out[3] == E

    def test_simultaneous_not_incremental(self):
        # the A's adjacent to the N's are filtered in the same pass, but
        # the end partitions survive (the paper's Figure 5 note)
        out = filter_partitions(labels(A, A, N, N, A, A))
        assert list(out) == [A, E, E, E, E, A]

    def test_end_partitions_never_filtered(self):
        out = filter_partitions(labels(A, N))
        assert list(out) == [A, N]

    def test_empty_partitions_skipped_for_adjacency(self):
        # nearest non-Empty neighbours are used, not literal neighbours
        out = filter_partitions(labels(A, E, N, E, N, E, A))
        # each N disagrees with its nearest non-Empty neighbour on one side
        assert out[2] == E and out[4] == E

    def test_lone_abnormal_kept(self):
        # "If we only have a single Normal or Abnormal partition to begin
        # with, we deem it significant and do not filter it."
        out = filter_partitions(labels(N, N, A, N, N))
        assert out[2] == A

    def test_lone_normal_kept(self):
        # a lone Normal among many Abnormal is deemed significant
        out = filter_partitions(labels(A, A, N, A, A))
        assert out[2] == N

    def test_all_empty_unchanged(self):
        out = filter_partitions(labels(E, E, E))
        assert list(out) == [E, E, E]

    def test_input_not_mutated(self):
        original = labels(A, N, A)
        filter_partitions(original)
        assert list(original) == [A, N, A]


class TestLoneLabelSemantics:
    def test_lone_abnormal_among_normals_survives(self):
        out = filter_partitions(labels(N, N, N, A, N, N))
        assert out[3] == A

    def test_two_abnormal_not_lone(self):
        out = filter_partitions(labels(N, A, N, A, N))
        # two abnormal partitions: both disagree with neighbours -> filtered
        assert out[1] == E and out[3] == E


class TestFillGaps:
    def test_fill_between_same_label(self):
        out = fill_gaps(labels(N, A, E, E, A), delta=1.0)
        assert list(out) == [N, A, A, A, A]

    def test_fill_edges_take_nearest(self):
        out = fill_gaps(labels(E, A, N, E), delta=1.0)
        assert list(out) == [A, A, N, N]

    def test_delta_one_takes_closer(self):
        out = fill_gaps(labels(A, E, E, E, E, E, N), delta=1.0)
        # gap indices 1..5: closer side wins, the midpoint tie goes Normal
        assert list(out) == [A, A, A, N, N, N, N]

    def test_large_delta_favours_normal(self):
        out = fill_gaps(labels(A, E, E, E, E, E, N), delta=10.0)
        # with delta=10 every gap partition is closer to Normal
        assert list(out[1:6]) == [N, N, N, N, N]

    def test_small_delta_favours_abnormal(self):
        out = fill_gaps(labels(A, E, E, E, E, E, N), delta=0.1)
        assert list(out[1:6]) == [A, A, A, A, A]

    def test_ties_go_normal(self):
        out = fill_gaps(labels(A, E, N), delta=1.0)
        assert out[1] == N

    def test_only_abnormal_uses_normal_mean_partition(self):
        out = fill_gaps(labels(E, E, A, E, E), delta=1.0, normal_mean_partition=0)
        assert out[0] == N
        assert (out == A).any()
        assert not (out == E).any()

    def test_only_abnormal_without_hint_raises(self):
        with pytest.raises(ValueError):
            fill_gaps(labels(E, A, E), delta=1.0)

    def test_all_empty_returned_unchanged(self):
        out = fill_gaps(labels(E, E), delta=1.0)
        assert list(out) == [E, E]

    def test_bad_delta_rejected(self):
        with pytest.raises(ValueError):
            fill_gaps(labels(A, E, N), delta=0.0)

    def test_result_fully_labeled(self):
        out = fill_gaps(labels(E, N, E, A, E, N, E), delta=10.0)
        assert not (out == E).any()


class TestAbnormalBlocks:
    def test_single_block(self):
        assert abnormal_blocks(labels(N, A, A, N)) == [(1, 2)]

    def test_multiple_blocks(self):
        assert abnormal_blocks(labels(A, N, A, A)) == [(0, 0), (2, 3)]

    def test_block_at_end(self):
        assert abnormal_blocks(labels(N, N, A)) == [(2, 2)]

    def test_no_blocks(self):
        assert abnormal_blocks(labels(N, E, N)) == []
