"""Fleet engine: bitwise equivalence, scheduling, durability.

The load-bearing claim of :mod:`repro.fleet` is that the vectorized
cross-stream engine is *bitwise* interchangeable with N independent
:class:`~repro.stream.detector.StreamingDetector` instances — same
verdicts, masks, ε, quarantines, closed regions, and byte-identical
checkpoints — including under the ``moderate`` chaos profile's degraded
telemetry.  Everything else (scheduler backpressure, WAL recovery,
status rendering) is built on that invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.explain import DBSherlock
from repro.eval.chaos import PROFILES
from repro.fleet import (
    FleetDetector,
    FleetScheduler,
    FleetSimSource,
    SortedWindowBank,
)
from repro.fleet.arena import FleetArena
from repro.fleet.status import render_fleet_status
from repro.obs.metrics import MetricsRegistry
from repro.stream.detector import StreamingDetector


# ----------------------------------------------------------------------
# Sorted bank: exact order statistics under one-in/one-out
# ----------------------------------------------------------------------
class TestSortedWindowBank:
    def test_matches_numpy_under_fuzz(self):
        rng = np.random.default_rng(11)
        lanes, cap = 7, 9
        bank = SortedWindowBank(lanes, cap)
        buffers = [[] for _ in range(lanes)]
        for _ in range(400):
            values = np.round(rng.normal(size=lanes) * 4.0)  # duplicates
            active = rng.random(lanes) < 0.8
            evicted = np.zeros(lanes)
            for lane in range(lanes):
                if active[lane]:
                    if len(buffers[lane]) >= cap:
                        evicted[lane] = buffers[lane].pop(0)
                    buffers[lane].append(values[lane])
            bank.replace(values, active, evicted)
            meds = bank.medians()
            mins = bank.mins()
            maxs = bank.maxs()
            for lane in range(lanes):
                buf = np.asarray(buffers[lane])
                if buf.size == 0:
                    assert np.isnan(meds[lane])
                    continue
                assert meds[lane] == np.median(buf)
                assert mins[lane] == buf.min()
                assert maxs[lane] == buf.max()
                live = bank._sorted[lane, : len(buf)]
                assert np.array_equal(live, np.sort(buf))

    def test_empty_and_inactive_lanes_are_noops(self):
        bank = SortedWindowBank(3, 4)
        bank.replace(
            np.array([1.0, 2.0, 3.0]),
            np.array([True, False, True]),
            np.zeros(3),
        )
        assert bank.counts.tolist() == [1, 0, 1]
        assert np.isnan(bank.medians()[1])
        assert bank.medians()[0] == 1.0


# ----------------------------------------------------------------------
# Arena: Equation 4 statistics against the naive definition
# ----------------------------------------------------------------------
class TestFleetArena:
    def test_stats_match_naive_definition(self):
        rng = np.random.default_rng(5)
        S, attrs, cap, w = 4, ["x", "y"], 12, 4
        arena = FleetArena(S, attrs, cap, w)
        history = [[] for _ in range(S)]
        for t in range(40):
            values = rng.normal(size=(S, len(attrs))) * 10.0
            active = rng.random(S) < 0.85
            times = np.full(S, float(t + 1))
            arena.append(times, values, active)
            for s in range(S):
                if active[s]:
                    history[s].append(values[s])
            stats = arena.stats()
            for s in range(S):
                rows = np.asarray(history[s][-cap:])
                if rows.size == 0:
                    continue
                matrix = rows.T  # (attrs, n)
                assert np.array_equal(stats.mins[s], matrix.min(axis=1))
                assert np.array_equal(stats.maxs[s], matrix.max(axis=1))
                n = matrix.shape[1]
                for j in range(len(attrs)):
                    col = matrix[j]
                    span = col.max() - col.min()
                    if n <= w or span <= 0:
                        assert stats.powers[s, j] == 0.0
                        continue
                    wm = np.array(
                        [
                            np.median(col[i : i + w])
                            for i in range(n - w + 1)
                        ]
                    )
                    expect = (
                        max(
                            abs(np.median(col) - wm.min()),
                            abs(np.median(col) - wm.max()),
                        )
                        / span
                    )
                    assert stats.powers[s, j] == expect

    def test_view_exposes_retained_rows_in_order(self):
        arena = FleetArena(2, ["a"], 3, 2)
        for t in range(5):
            arena.append(
                np.array([t + 1.0, t + 1.0]),
                np.array([[float(t)], [float(10 + t)]]),
                np.array([True, t % 2 == 0]),
            )
        v0 = arena.view(0)
        assert v0.timestamps.tolist() == [3.0, 4.0, 5.0]
        assert v0.column("a").tolist() == [2.0, 3.0, 4.0]
        assert v0.bounds("a") == (2.0, 4.0)
        assert v0.oldest_seq == 2


# ----------------------------------------------------------------------
# Bitwise equivalence with mirrored single-stream detectors
# ----------------------------------------------------------------------
DETECTOR_KW = dict(
    capacity=40,
    window=8,
    pp_threshold=0.45,
    min_pts=3,
    cluster_fraction=0.2,
    min_region_s=2.0,
    gap_fill_s=3.0,
)


def _mirrors(n, attrs, **extra):
    return [
        StreamingDetector(mode="exact", **DETECTOR_KW, **extra)
        for _ in range(n)
    ]


def _assert_tick_equal(tick, mirror_ticks, sizes):
    for s, mt in enumerate(mirror_ticks):
        if mt is None:
            continue
        res = tick.result(s)
        assert res.selected_attributes == list(
            mt.result.selected_attributes
        )
        assert np.array_equal(res.mask, mt.result.mask)
        assert res.regions == mt.result.regions
        assert res.eps == mt.result.eps
        assert tick.closed.get(s, []) == mt.closed_regions
        assert bool(tick.reclustered[s]) == mt.reclustered


def _run_equivalence(rounds, fleet, mirrors, attrs):
    """Feed identical rows to both paths, asserting every tick."""
    for times, values, active in rounds:
        tick = fleet.tick(times, values, active)
        mirror_ticks = []
        for s, det in enumerate(mirrors):
            if not active[s]:
                mirror_ticks.append(None)
                continue
            row = {a: values[s, j] for j, a in enumerate(attrs)}
            mirror_ticks.append(det.tick(times[s], row, {}))
        _assert_tick_equal(tick, mirror_ticks, tick.sizes)
    for s, det in enumerate(mirrors):
        assert fleet.stream_checkpoint(s) == det.checkpoint()


class TestFleetEquivalence:
    def test_clean_stream_bitwise_equal(self):
        S, attrs = 5, ["a", "b", "c"]
        src = FleetSimSource(
            S,
            attrs,
            seed=21,
            anomaly_fraction=0.4,
            anomaly_period=25,
            anomaly_duration=12,
            anomaly_scale=10.0,
        )
        fleet = FleetDetector(S, attrs, **DETECTOR_KW)
        mirrors = _mirrors(S, attrs)
        _run_equivalence(src.take(90), fleet, mirrors, attrs)

    def test_moderate_chaos_bitwise_equal(self):
        """Identical verdicts/quarantines/checkpoints under `moderate`.

        Per-tenant tick streams go through the real `moderate` fault
        plan (5% dropped ticks, 2% NaN cells, one stuck-at attribute),
        then the *delivered* rows feed both the fleet engine and
        mirrored single-stream detectors with stuck-at quarantine on.
        """
        S, attrs = 4, ["a", "b", "c"]
        profile = PROFILES["moderate"]
        base_rng = np.random.default_rng(99)
        delivered = []
        for s in range(S):
            ticks = []
            for t in range(110):
                row = {
                    a: float(
                        50.0
                        + 10 * base_rng.standard_normal()
                        + (40.0 if s < 2 and 60 <= t < 75 and a != "c" else 0)
                    )
                    for a in attrs
                }
                ticks.append((float(t + 1), row, {}))
            plan = profile.plan(seed=1000 + s)
            delivered.append(list(plan.wrap(iter(ticks))))

        def rounds():
            n_rounds = max(len(d) for d in delivered)
            for r in range(n_rounds):
                times = np.zeros(S)
                values = np.zeros((S, len(attrs)))
                active = np.zeros(S, dtype=bool)
                for s in range(S):
                    if r < len(delivered[s]):
                        t, row, _ = delivered[s][r]
                        times[s] = t
                        values[s] = [
                            row.get(a, float("nan")) for a in attrs
                        ]
                        active[s] = True
                yield times, values, active

        fleet = FleetDetector(S, attrs, quarantine_after=5, **DETECTOR_KW)
        mirrors = _mirrors(S, attrs, quarantine_after=5)
        _run_equivalence(rounds(), fleet, mirrors, attrs)
        for s, det in enumerate(mirrors):
            fleet_q = {
                a
                for j, a in enumerate(attrs)
                if fleet.quarantined[s, j]
            }
            assert fleet_q == det.quarantined
            assert fleet.dropped_counts[s] == det.dropped_ticks
            assert fleet.sanitized_counts[s] == det.sanitized_values

    def test_variance_quarantine_bitwise_equal(self):
        S, attrs = 3, ["a", "b"]
        src = FleetSimSource(
            S,
            attrs,
            seed=4,
            anomaly_fraction=0.5,
            anomaly_period=20,
            anomaly_duration=10,
            anomaly_scale=9.0,
            stuck_streams=[1],
            stuck_attr="b",
        )
        kw = dict(quarantine_after=6, quarantine_rel_epsilon=1e-3)
        fleet = FleetDetector(S, attrs, **DETECTOR_KW, **kw)
        mirrors = _mirrors(S, attrs, **kw)
        _run_equivalence(src.take(70), fleet, mirrors, attrs)
        assert fleet.quarantined[1, 1]  # the stuck lane was caught

    def test_checkpoint_restore_is_bitwise(self):
        S, attrs = 3, ["a", "b"]
        src = FleetSimSource(
            S, attrs, seed=13, anomaly_fraction=0.5, anomaly_scale=10.0,
            anomaly_period=20, anomaly_duration=10,
        )
        fleet = FleetDetector(S, attrs, quarantine_after=5, **DETECTOR_KW)
        batches = list(src.take(120))
        for times, values, active in batches[:50]:
            fleet.tick(times, values, active)
        states = [fleet.stream_checkpoint(s) for s in range(S)]
        # a single-stream detector accepts the same checkpoint unchanged
        solo = StreamingDetector.from_checkpoint(states[0])
        assert solo.checkpoint() == states[0]
        restored = FleetDetector.from_checkpoints(states)
        for s in range(S):
            assert restored.stream_checkpoint(s) == states[s]
        for times, values, active in batches[50:]:
            a = fleet.tick(times, values, active)
            b = restored.tick(times, values, active)
            assert np.array_equal(a.selected, b.selected)
            assert np.array_equal(a.powers, b.powers)
            assert sorted(a.results) == sorted(b.results)
        for s in range(S):
            assert fleet.stream_checkpoint(s) == restored.stream_checkpoint(
                s
            )


# ----------------------------------------------------------------------
# Scheduler: backpressure, shedding, durability
# ----------------------------------------------------------------------
def _busy_source(S, attrs, seed=7):
    return FleetSimSource(
        S,
        attrs,
        seed=seed,
        anomaly_fraction=0.6,
        anomaly_period=25,
        anomaly_duration=16,
        anomaly_scale=14.0,
    )


_BUSY_KW = dict(DETECTOR_KW, pp_threshold=0.3)


class TestFleetScheduler:
    ATTRS = ["a", "b", "c"]

    def _detector(self, S, **extra):
        return FleetDetector(S, self.ATTRS, **_BUSY_KW, **extra)

    def test_block_policy_diagnoses_everything(self):
        S = 8
        sched = FleetScheduler(
            self._detector(S),
            sherlock=DBSherlock(),
            max_pending=1,
            diagnose_jobs=1,
            shed_policy="block",
            label_metrics=False,
        )
        report = sched.run(_busy_source(S, self.ATTRS).take(120))
        sched.close()
        assert report.shed == 0
        assert report.diagnoses == report.closed_regions > 0
        assert all(
            exp.predicates is not None for _, _, exp in sched.diagnoses
        )

    def test_shedding_policies_bound_the_queue(self):
        for policy in ("drop_oldest", "reject_new"):
            S = 8
            sched = FleetScheduler(
                self._detector(S),
                sherlock=DBSherlock(),
                max_pending=1,
                diagnose_jobs=1,
                shed_policy=policy,
                label_metrics=False,
            )
            report = sched.run(_busy_source(S, self.ATTRS).take(120))
            sched.close()
            assert report.diagnoses + report.shed == report.closed_regions
            if report.shed:
                assert sum(report.shed_by_tenant.values()) == report.shed

    def test_rejects_bad_configuration(self):
        det = self._detector(2)
        with pytest.raises(ValueError):
            FleetScheduler(det, shed_policy="nope")
        with pytest.raises(ValueError):
            FleetScheduler(det, tenants=["only-one"])
        with pytest.raises(ValueError):
            FleetScheduler(det, tenants=["x", "x"])
        with pytest.raises(ValueError):
            FleetScheduler(det, durable=["x"], tenants=["x", "y"])

    def test_wal_crash_recovery_is_bitwise(self, tmp_path):
        S = 3
        tenants = ["alpha", "beta", "gamma"]
        src = _busy_source(S, self.ATTRS, seed=17)
        batches = list(src.take(70))
        sched = FleetScheduler(
            self._detector(S, quarantine_after=5),
            tenants=tenants,
            root_dir=tmp_path,
            durable=tenants,
            checkpoint_every=20,
            label_metrics=False,
        )
        for times, values, active in batches:
            sched.run_round(times, values, active)
        # crash: drop the scheduler without a final checkpoint — the
        # rows after round 60 live only in the WALs
        live_states = [
            sched.detector.stream_checkpoint(s) for s in range(S)
        ]
        sched._pool.shutdown(wait=True)
        for wal in sched._wals.values():
            wal.close()

        recovered = FleetScheduler.recover(
            tmp_path, tenants, label_metrics=False
        )
        for s in range(S):
            assert (
                recovered.detector.stream_checkpoint(s) == live_states[s]
            )
        # and the recovered fleet keeps ticking identically
        src2 = FleetSimSource(S, self.ATTRS, seed=555)
        for times, values, active in src2.take(5):
            a = sched.detector.tick(times, values, active)
            b = recovered.detector.tick(times, values, active)
            assert np.array_equal(a.selected, b.selected)
            assert np.array_equal(a.powers, b.powers)
        recovered.close()

    def test_latency_percentiles_and_verdict_latency(self):
        S = 4
        det = self._detector(S)
        sched = FleetScheduler(det, label_metrics=False)
        src = _busy_source(S, self.ATTRS)
        for times, values, active in src.take(30):
            tick = sched.run_round(times, values, active)
            lat = tick.verdict_latency
            assert lat is not None
            assert np.isfinite(lat[active]).all()
            assert (lat[active] > 0).all()
        pcts = sched.latency_percentiles()
        assert pcts["p50"] <= pcts["p90"] <= pcts["p99"]
        sched.close()


# ----------------------------------------------------------------------
# Status rendering
# ----------------------------------------------------------------------
class TestFleetStatus:
    def test_renders_per_tenant_rows_from_registry(self):
        registry = MetricsRegistry()
        lag = registry.gauge(
            "repro_fleet_tenant_lag", "lag", labelnames=("tenant",)
        )
        verdicts = registry.counter(
            "repro_fleet_tenant_verdicts_total",
            "verdicts",
            labelnames=("tenant", "verdict"),
        )
        lag.labels(tenant="t1").set(3)
        verdicts.labels(tenant="t1", verdict="abnormal").inc(2)
        verdicts.labels(tenant="t1", verdict="normal").inc(5)
        rounds = registry.counter("repro_fleet_rounds_total", "rounds")
        rounds.inc(7)
        text = render_fleet_status(registry.snapshot())
        assert "rounds 7" in text
        assert "t1" in text
        lines = [l for l in text.splitlines() if l.strip().startswith("t1")]
        assert len(lines) == 1
        fields = lines[0].split()
        # columns: tenant  health  breaker  durable  lag  shed  normal  abnormal
        assert fields[1] == "healthy" and fields[2] == "closed"
        assert fields[3] == "-"  # durability: not a durable tenant
        assert fields[4] == "3"  # lag
        assert fields[6] == "5" and fields[7] == "2"  # normal, abnormal

    def test_empty_snapshot_degrades_gracefully(self):
        text = render_fleet_status({})
        assert "no fleet metrics" in text
        assert "label_metrics=True" in text


# ----------------------------------------------------------------------
# Batched fallout: the storm path vs the serial stage-6 loop
# ----------------------------------------------------------------------
def _assert_fleet_ticks_match(a, b):
    assert np.array_equal(a.selected, b.selected)
    assert np.array_equal(a.powers, b.powers)
    assert np.array_equal(a.reclustered, b.reclustered)
    assert sorted(a.results) == sorted(b.results)
    for s in a.results:
        ra, rb = a.result(s), b.result(s)
        assert ra.selected_attributes == rb.selected_attributes
        assert np.array_equal(ra.mask, rb.mask)
        assert ra.regions == rb.regions
        assert ra.eps == rb.eps
    assert a.closed == b.closed


class TestBatchedFalloutEquivalence:
    """``batch_fallout=True`` is bitwise-identical to the serial loop.

    The fleet engine's storm path re-clusters every fallout stream
    through ``cluster_windows_batch``/``close_regions_batch``; these
    tests drive a batched and a serial detector in lockstep over the
    same rows — clean, under chaos-degraded telemetry, and across a
    checkpoint/restore boundary — asserting every tick and the final
    checkpoints match exactly.
    """

    def _lockstep(self, rounds, S, attrs, **kw):
        batched = FleetDetector(S, attrs, batch_fallout=True, **kw)
        serial = FleetDetector(S, attrs, batch_fallout=False, **kw)
        for times, values, active in rounds:
            a = batched.tick(times, values, active)
            b = serial.tick(times, values, active)
            _assert_fleet_ticks_match(a, b)
        for s in range(S):
            assert batched.stream_checkpoint(s) == serial.stream_checkpoint(
                s
            )
        return batched, serial

    def test_storm_source_bitwise_equal(self):
        S, attrs = 6, ["a", "b", "c"]
        rounds = list(_busy_source(S, attrs, seed=29).take(100))
        batched, _ = self._lockstep(rounds, S, attrs, **_BUSY_KW)
        # the source must actually have produced fallout work
        assert batched.recluster_counts.sum() > 0

    def test_moderate_chaos_bitwise_equal(self):
        S, attrs = 4, ["a", "b", "c"]
        profile = PROFILES["moderate"]
        base_rng = np.random.default_rng(31)
        delivered = []
        for s in range(S):
            ticks = []
            for t in range(110):
                row = {
                    a: float(
                        50.0
                        + 10 * base_rng.standard_normal()
                        + (40.0 if s < 2 and 60 <= t < 75 and a != "c" else 0)
                    )
                    for a in attrs
                }
                ticks.append((float(t + 1), row, {}))
            plan = profile.plan(seed=2000 + s)
            delivered.append(list(plan.wrap(iter(ticks))))

        rounds = []
        n_rounds = max(len(d) for d in delivered)
        for r in range(n_rounds):
            times = np.zeros(S)
            values = np.zeros((S, len(attrs)))
            active = np.zeros(S, dtype=bool)
            for s in range(S):
                if r < len(delivered[s]):
                    t, row, _ = delivered[s][r]
                    times[s] = t
                    values[s] = [row.get(a, float("nan")) for a in attrs]
                    active[s] = True
            rounds.append((times, values, active))
        self._lockstep(
            rounds, S, attrs, quarantine_after=5, **_BUSY_KW
        )

    def test_checkpoint_restore_continues_bitwise(self):
        S, attrs = 4, ["a", "b"]
        batches = list(_busy_source(S, attrs, seed=43).take(110))
        batched = FleetDetector(S, attrs, batch_fallout=True, **_BUSY_KW)
        for times, values, active in batches[:60]:
            batched.tick(times, values, active)
        states = [batched.stream_checkpoint(s) for s in range(S)]
        serial = FleetDetector.from_checkpoints(states)
        serial.batch_fallout = False  # runtime-only flag, not in the schema
        for s in range(S):
            assert serial.stream_checkpoint(s) == states[s]
        for times, values, active in batches[60:]:
            a = batched.tick(times, values, active)
            b = serial.tick(times, values, active)
            _assert_fleet_ticks_match(a, b)
        for s in range(S):
            assert batched.stream_checkpoint(s) == serial.stream_checkpoint(
                s
            )


# ----------------------------------------------------------------------
# Scheduler under storm: fused batches, striped locks, shed policies
# ----------------------------------------------------------------------
class TestSchedulerStormStress:
    """All three shed policies at ``diagnose_jobs=8``: no diagnosis is
    lost or duplicated, and per-tenant verdict order stays monotone even
    though batches complete on a thread pool."""

    ATTRS = ["a", "b", "c"]

    def _drive(self, policy, max_pending):
        S = 8
        sched = FleetScheduler(
            FleetDetector(S, self.ATTRS, **_BUSY_KW),
            sherlock=DBSherlock(),
            diagnose_jobs=8,
            max_pending=max_pending,
            shed_policy=policy,
            label_metrics=False,
        )
        closed = {t: [] for t in sched.tenants}
        for times, values, active in _busy_source(S, self.ATTRS).take(120):
            tick = sched.run_round(times, values, active)
            for s in sorted(tick.closed):
                for region in tick.closed[s]:
                    closed[sched.tenants[s]].append(region)
        sched.drain()
        diagnosed = {t: [] for t in sched.tenants}
        for tenant, region, explanation in sched.diagnoses:
            assert explanation is not None
            assert explanation.predicates is not None
            diagnosed[tenant].append(region)
        report = sched.report
        sched.close()
        return report, closed, diagnosed

    @staticmethod
    def _is_subsequence(sub, full):
        it = iter(full)
        return all(any(x == y for y in it) for x in sub)

    @pytest.mark.parametrize(
        "policy,max_pending",
        [("block", 4), ("drop_oldest", 4), ("reject_new", 4)],
    )
    def test_no_lost_or_duplicated_diagnoses(self, policy, max_pending):
        report, closed, diagnosed = self._drive(policy, max_pending)
        assert report.closed_regions > 0
        # conservation: every closed region was diagnosed or shed, never both
        assert report.diagnoses + report.shed == report.closed_regions
        assert sum(len(v) for v in diagnosed.values()) == report.diagnoses
        for tenant in closed:
            shed_t = report.shed_by_tenant.get(tenant, 0)
            assert len(diagnosed[tenant]) + shed_t == len(closed[tenant]), (
                policy,
                tenant,
            )
            # monotone verdict order: diagnoses arrive in closed order
            assert self._is_subsequence(
                diagnosed[tenant], closed[tenant]
            ), (policy, tenant)
        if policy == "block":
            assert report.shed == 0
            for tenant in closed:
                assert diagnosed[tenant] == closed[tenant]


# ----------------------------------------------------------------------
# Shutdown races: close()/drain() while diagnosis work is in flight
# ----------------------------------------------------------------------
class TestSchedulerShutdownRaces:
    """Tearing the scheduler down mid-storm must not lose, duplicate, or
    leak work: ``close()`` called with fused batches still executing on
    the pool settles every job exactly once, under all three shed
    policies."""

    ATTRS = ["a", "b", "c"]

    def _storm_scheduler(self, policy, **extra):
        S = 8
        return FleetScheduler(
            FleetDetector(S, self.ATTRS, **_BUSY_KW),
            sherlock=DBSherlock(),
            diagnose_jobs=8,
            max_pending=4,
            shed_policy=policy,
            label_metrics=False,
            **extra,
        )

    @pytest.mark.parametrize("policy", ("block", "drop_oldest", "reject_new"))
    def test_close_with_batches_in_flight(self, policy):
        sched = self._storm_scheduler(policy)
        closed = {t: [] for t in sched.tenants}
        for times, values, active in _busy_source(8, self.ATTRS).take(60):
            tick = sched.run_round(times, values, active)
            for s in sorted(tick.closed):
                closed[sched.tenants[s]].extend(tick.closed[s])
        # no drain(): batches are still buffered and executing when the
        # shutdown starts — close() must settle them, not strand them
        assert sched._pending or sched._buffer or sched.report.diagnoses
        sched.close()
        report = sched.report
        assert report.closed_regions > 0
        assert (
            report.diagnoses + report.shed + report.diagnosis_failures
            == report.closed_regions
        )
        assert report.diagnosis_failures == 0
        diagnosed = {t: [] for t in sched.tenants}
        for tenant, region, explanation in sched.diagnoses:
            assert explanation is not None
            diagnosed[tenant].append(region)
        for tenant in closed:
            shed_t = report.shed_by_tenant.get(tenant, 0)
            assert len(diagnosed[tenant]) + shed_t == len(closed[tenant]), (
                policy,
                tenant,
            )

    @pytest.mark.parametrize("policy", ("block", "drop_oldest", "reject_new"))
    def test_drain_midflight_then_resume(self, policy):
        sched = self._storm_scheduler(policy)
        src = _busy_source(8, self.ATTRS)
        batches = list(src.take(90))
        for times, values, active in batches[:45]:
            sched.run_round(times, values, active)
        sched.drain()  # barrier mid-storm, work still arriving after
        mid = sched.report.diagnoses + sched.report.shed
        assert mid == sched.report.closed_regions
        for times, values, active in batches[45:]:
            sched.run_round(times, values, active)
        sched.close()
        report = sched.report
        assert report.diagnoses + report.shed == report.closed_regions
        assert report.diagnoses + report.shed > mid

    def test_double_close_is_idempotent(self):
        sched = self._storm_scheduler("drop_oldest")
        for times, values, active in _busy_source(8, self.ATTRS).take(20):
            sched.run_round(times, values, active)
        sched.close()
        first = (sched.report.diagnoses, sched.report.shed)
        sched.close()  # second close: no new work, no exception
        assert (sched.report.diagnoses, sched.report.shed) == first

    def test_midstorm_checkpoint_restores_bitwise(self, tmp_path):
        """An explicit checkpoint taken while anomalies are open (regions
        growing, diagnosis batches in flight) restores bitwise."""
        S = 4
        tenants = [f"mid{i}" for i in range(S)]
        batches = list(_busy_source(S, self.ATTRS, seed=23).take(55))
        sched = FleetScheduler(
            FleetDetector(S, self.ATTRS, **_BUSY_KW),
            sherlock=DBSherlock(),
            tenants=tenants,
            root_dir=tmp_path,
            durable=tenants,
            diagnose_jobs=4,
            label_metrics=False,
        )
        for i, (times, values, active) in enumerate(batches):
            sched.run_round(times, values, active)
            if i == 34:  # inside the second anomaly window (25..40)
                sched.checkpoint()
        live = [sched.detector.stream_checkpoint(s) for s in range(S)]
        # crash without a final checkpoint: rounds 36..55 live in WALs
        sched._pool.shutdown(wait=True)
        for wal in sched._wals.values():
            wal.close()
        sched.health.close()

        recovered = FleetScheduler.recover(tmp_path, tenants, label_metrics=False)
        for s in range(S):
            assert recovered.detector.stream_checkpoint(s) == live[s], s
        report = recovered.recovery_report
        assert report is not None and report.recovered == tenants
        assert all(
            report.outcome(t).replayed_ticks > 0 for t in tenants
        )
        # and it keeps ticking in lockstep with the crashed live fleet
        for times, values, active in FleetSimSource(
            S, self.ATTRS, seed=777
        ).take(5):
            a = sched.detector.tick(times, values, active)
            b = recovered.detector.tick(times, values, active)
            assert np.array_equal(a.selected, b.selected)
            assert np.array_equal(a.powers, b.powers, equal_nan=True)
            for s in range(S):
                assert a.closed.get(s, []) == b.closed.get(s, [])
        recovered.close()
