"""Failure containment: bulkheads, breakers, deadline tiers, recovery.

The robustness claim layered on top of the fleet engine: one hostile
tenant — a detection lane that raises, a diagnosis that hangs or fails,
durable state that rots on disk — loses service *itself* while every
other tenant's outputs stay bitwise-equal to a fault-free run.  The
full-fleet blast-radius assertion lives in
``benchmarks/bench_fleet_chaos.py``; these tests pin the individual
mechanisms.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.explain import DBSherlock
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec
from repro.faults import (
    CorruptTenantState,
    DiagnosisHang,
    LaneExceptionFault,
)
from repro.fleet import FleetDetector, FleetScheduler, FleetSimSource
from repro.fleet.health import (
    CircuitBreaker,
    HealthTracker,
    read_health_journal,
)

ATTRS = ["a", "b", "c"]

#: Hot-fleet detector: every anomalous tenant reliably falls out.
DET_KW = dict(
    capacity=40,
    window=8,
    pp_threshold=0.3,
    min_pts=3,
    cluster_fraction=0.2,
    min_region_s=2.0,
    gap_fill_s=3.0,
)


def _storm_source(S, seed=7):
    return FleetSimSource(
        S,
        ATTRS,
        seed=seed,
        anomaly_fraction=1.0,
        anomaly_period=25,
        anomaly_duration=16,
        anomaly_scale=14.0,
    )


def _job_dataset(tenant: str, seed: int = 0):
    rows, lo, hi = 60, 20, 35
    rng = np.random.default_rng(100 + seed)
    cols = {}
    for i, a in enumerate(ATTRS):
        base = rng.normal(50.0 + 3 * i, 2.0, size=rows)
        base[lo : hi + 1] += 14.0
        cols[a] = base
    ds = Dataset(
        np.arange(rows, dtype=np.float64),
        numeric=cols,
        name=f"fleet:{tenant}",
    )
    return ds, Region(float(lo), float(hi))


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        br = CircuitBreaker(failure_threshold=3, cooldown_rounds=5)
        assert br.admit(0) == "admit"
        assert not br.record_failure(0)
        assert not br.record_failure(0)
        assert br.record_failure(0)  # third consecutive -> open
        assert br.state == "open"
        assert br.opens == 1
        assert br.admit(1) == "reject"

    def test_success_resets_the_consecutive_count(self):
        br = CircuitBreaker(failure_threshold=2, cooldown_rounds=5)
        br.record_failure(0)
        br.record_success()
        br.record_failure(1)
        assert br.state == "closed"  # never reached 2 consecutive

    def test_half_open_admits_exactly_one_probe(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_rounds=3)
        br.record_failure(0)
        assert br.state == "open"
        assert br.admit(2) == "reject"  # cooldown not elapsed
        assert br.admit(3) == "probe"
        assert br.state == "half_open"
        assert br.admit(3) == "reject"  # probe already in flight

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_rounds=3)
        br.record_failure(0)
        assert br.admit(3) == "probe"
        assert br.record_failure(7)
        assert br.state == "open"
        assert br.opens == 2
        assert br.admit(9) == "reject"
        assert br.admit(10) == "probe"

    def test_probe_success_closes_and_readmits(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_rounds=3)
        br.record_failure(0)
        assert br.admit(3) == "probe"
        assert br.record_success()
        assert br.state == "closed"
        assert br.admit(4) == "admit"


# ----------------------------------------------------------------------
# Health tracker and its durable journal
# ----------------------------------------------------------------------
class TestHealthTracker:
    def test_transitions_are_journaled_for_durable_tenants(self, tmp_path):
        tracker = HealthTracker(
            ["alpha", "beta"],
            root_dir=tmp_path,
            durable=["alpha"],
            label_metrics=False,
        )
        assert tracker.state("alpha") == "healthy"
        assert tracker.set_state("alpha", "degraded", reason="slow", round_no=3)
        assert not tracker.set_state("alpha", "degraded")  # no-op repeat
        assert tracker.set_state("alpha", "healthy", reason="recovered")
        tracker.set_state("beta", "quarantined", reason="lane poisoned")
        tracker.close()

        entries = read_health_journal(tmp_path, "alpha")
        assert [(e["from"], e["to"]) for e in entries] == [
            ("healthy", "degraded"),
            ("degraded", "healthy"),
        ]
        assert entries[0]["reason"] == "slow"
        assert entries[0]["round"] == 3
        # beta is not durable: no journal on disk
        assert read_health_journal(tmp_path, "beta") == []
        counts = tracker.counts()
        assert counts["healthy"] == 1 and counts["quarantined"] == 1

    def test_journal_tolerates_a_torn_tail(self, tmp_path):
        tracker = HealthTracker(
            ["alpha"], root_dir=tmp_path, durable=["alpha"], label_metrics=False
        )
        tracker.set_state("alpha", "ejected", reason="breaker open")
        tracker.close()
        path = tmp_path / "alpha" / HealthTracker.JOURNAL_NAME
        with path.open("a") as handle:
            handle.write('{"tenant": "alpha", "from": "ejec')  # torn write
        entries = read_health_journal(tmp_path, "alpha")
        assert len(entries) == 1
        assert entries[0]["to"] == "ejected"

    def test_rejects_unknown_states(self):
        tracker = HealthTracker(["alpha"], label_metrics=False)
        with pytest.raises(ValueError):
            tracker.set_state("alpha", "on-fire")


class TestJournalUnderInjectedFaults:
    """``read_health_journal`` reads through the storage shim, so the
    same hostile-disk faults the WAL survives must not crash it."""

    def _journal(self, root, transitions=3):
        tracker = HealthTracker(
            ["alpha"], root_dir=root, durable=["alpha"], label_metrics=False
        )
        states = ["degraded", "healthy"] * transitions
        for round_no, state in enumerate(states[:transitions]):
            tracker.set_state(
                "alpha", state, reason=f"r{round_no}", round_no=round_no
            )
        tracker.close()
        return tracker

    def test_truncating_read_yields_intact_prefix(self, tmp_path):
        from repro.faults import fs as fsmod
        from repro.faults.fs import ReadCorruption, StorageShim

        self._journal(tmp_path, transitions=3)
        clean = read_health_journal(tmp_path, "alpha")
        assert len(clean) == 3
        shim = StorageShim([ReadCorruption(mode="truncate", seed=11)])
        with fsmod.scoped_fs(shim):
            torn = read_health_journal(tmp_path, "alpha")
        # never raises; whatever parses is an exact prefix of the truth
        assert torn == clean[: len(torn)]
        assert len(torn) < len(clean)

    def test_bitflipped_read_never_raises(self, tmp_path):
        from repro.faults import fs as fsmod
        from repro.faults.fs import ReadCorruption, StorageShim

        self._journal(tmp_path, transitions=3)
        clean = read_health_journal(tmp_path, "alpha")
        for seed in range(8):
            shim = StorageShim([ReadCorruption(mode="bitflip", seed=seed)])
            with fsmod.scoped_fs(shim):
                records = read_health_journal(tmp_path, "alpha")
            # a flipped bit may land inside a value: any surviving
            # record must still be a dict with the journal's shape
            assert len(records) <= len(clean)
            for record in records:
                assert isinstance(record, dict)

    def test_failing_read_reports_empty_and_counts(self, tmp_path):
        import errno

        from repro.faults import fs as fsmod
        from repro.faults.fs import FSFault, StorageShim
        from repro.obs import metrics

        class DeadRead(FSFault):
            kind = "dead_read"

            def on_read(self, path, data):
                self._fire()
                raise OSError(errno.EIO, "injected: read failed", path)

        self._journal(tmp_path, transitions=2)
        errors = metrics.REGISTRY.get("repro_storage_read_errors_total")
        before = errors.value if errors is not None else 0
        with fsmod.scoped_fs(StorageShim([DeadRead(path_filter="health")])):
            assert read_health_journal(tmp_path, "alpha") == []
        errors = metrics.REGISTRY.get("repro_storage_read_errors_total")
        assert errors is not None and errors.value >= before + 1

    def test_flaky_writes_keep_journal_parsable(self, tmp_path):
        from repro.faults import fs as fsmod
        from repro.faults.fs import FlakyIO, StorageShim

        shim = StorageShim(
            [FlakyIO(rate=0.5, seed=7, path_filter="health.log")]
        )
        with fsmod.scoped_fs(shim):
            tracker = HealthTracker(
                ["alpha"],
                root_dir=tmp_path,
                durable=["alpha"],
                label_metrics=False,
            )
            for round_no in range(8):
                state = "degraded" if round_no % 2 == 0 else "healthy"
                tracker.set_state(
                    "alpha", state, reason=f"r{round_no}", round_no=round_no
                )
            tracker.close()
        # some appends were eaten, but what landed must replay cleanly
        records = read_health_journal(tmp_path, "alpha")
        assert all(
            rec["tenant"] == "alpha" and rec["to"] in ("degraded", "healthy")
            for rec in records
        )


# ----------------------------------------------------------------------
# Lane bulkhead: one raising lane never poisons the rest
# ----------------------------------------------------------------------
class TestLaneBulkhead:
    def test_poisoned_lane_is_contained_and_readmittable(self):
        S, bad = 6, 2
        rounds = list(_storm_source(S).take(70))
        clean = FleetDetector(S, ATTRS, **DET_KW)
        faulted = FleetDetector(S, ATTRS, **DET_KW)
        fault = LaneExceptionFault([bad], after_fallouts=1)
        faulted.install_lane_fault(fault)

        lane_errors = {}
        for times, values, active in rounds:
            a = clean.tick(times, values, active)
            b = faulted.tick(times, values, active)
            lane_errors.update(b.lane_errors)
            for s in range(S):
                if s == bad:
                    continue
                ra, rb = a.result(s), b.result(s)
                assert np.array_equal(ra.mask, rb.mask), s
                assert ra.regions == rb.regions, s
                assert ra.eps == rb.eps, s
                assert a.closed.get(s, []) == b.closed.get(s, []), s

        assert fault.raised.get(bad, 0) >= 1
        assert set(np.nonzero(faulted.poisoned)[0]) == {bad}
        assert bad in lane_errors and "injected lane fault" in lane_errors[bad]
        for s in range(S):
            if s != bad:
                assert faulted.stream_checkpoint(
                    s
                ) == clean.stream_checkpoint(s), s

        # readmission: the lane resumes from its frozen last-good state
        fault.active = False
        faulted.unpoison(bad)
        assert not bool(faulted.poisoned[bad])
        for times, values, active in _storm_source(S, seed=99).take(5):
            tick = faulted.tick(times, values, active)
            assert not tick.lane_errors

    def test_scheduler_quarantines_poisoned_tenants(self):
        S = 4
        det = FleetDetector(S, ATTRS, **DET_KW)
        sched = FleetScheduler(det, label_metrics=False)
        det.install_lane_fault(LaneExceptionFault([1], after_fallouts=0))
        for times, values, active in _storm_source(S).take(40):
            sched.run_round(times, values, active)
        assert sched.health.state(sched.tenants[1]) == "quarantined"
        assert "lane poisoned" in sched.health.reason(sched.tenants[1])
        sched.readmit(sched.tenants[1])
        assert sched.health.state(sched.tenants[1]) == "healthy"
        sched.close()


# ----------------------------------------------------------------------
# Diagnosis failures surface; retries isolate; the breaker ejects
# ----------------------------------------------------------------------
class _FlakySherlock:
    """Delegates to a real DBSherlock but raises for targeted tenants."""

    def __init__(self, tenants):
        self._inner = DBSherlock()
        self._bad = {f"fleet:{t}" for t in tenants}

    def explain(self, dataset, spec=None, **kwargs):
        if getattr(dataset, "name", None) in self._bad:
            raise RuntimeError("injected diagnosis fault")
        return self._inner.explain(dataset, spec, **kwargs)


class TestDiagnosisFailures:
    def test_failures_are_counted_retried_and_confined(self):
        S = 6
        sched = FleetScheduler(
            FleetDetector(S, ATTRS, **DET_KW),
            sherlock=_FlakySherlock(["t0001"]),
            diagnose_jobs=4,
            max_pending=64,
            label_metrics=False,
            max_retries=1,
            backoff_s=0.01,
            breaker_threshold=1,
            breaker_cooldown_rounds=1000,  # stays open for this run
        )
        for times, values, active in _storm_source(S).take(120):
            sched.run_round(times, values, active)
        sched.drain()
        report = sched.report

        # the silent-swallow fix: failed futures surface in the report
        assert report.diagnosis_failures > 0
        assert set(report.failures_by_tenant) == {"t0001"}
        # a failed fused batch is retried as singletons, so healthy jobs
        # fused with the poison job still get real explanations
        assert report.retries >= report.diagnosis_failures
        assert (
            report.diagnoses + report.shed + report.diagnosis_failures
            == report.closed_regions
        )
        diagnosed_tenants = {t for t, _, _ in sched.diagnoses}
        assert "t0001" not in diagnosed_tenants
        assert diagnosed_tenants  # everyone else still got answers
        for _, _, explanation in sched.diagnoses:
            assert explanation.predicates is not None

        # the failure tripped t0001's breaker and ejected it
        assert report.failures_by_tenant["t0001"] >= 1
        assert sched.health.breakers["t0001"].state == "open"
        assert sched.health.state("t0001") == "ejected"
        for t in sched.tenants:
            if t != "t0001":
                assert sched.health.breakers[t].state == "closed"
        sched.close()


# ----------------------------------------------------------------------
# Deadline tiers: degraded fallback, hard abandon, probe readmission
# ----------------------------------------------------------------------
class TestDeadlineTiers:
    def _seeded_sherlock(self):
        sherlock = DBSherlock()
        ds, region = _job_dataset("seed")
        explanation = sherlock.explain(
            ds, RegionSpec(abnormal=[region], normal=None)
        )
        sherlock.feedback("storm overload", explanation, ds)
        return sherlock

    def test_soft_deadline_publishes_degraded_ranking(self):
        hang = DiagnosisHang(["t0000"], hang_s=0.4)
        sched = FleetScheduler(
            FleetDetector(2, ATTRS, **DET_KW),
            sherlock=hang.wrap(self._seeded_sherlock()),
            diagnose_jobs=1,
            max_pending=64,
            label_metrics=False,
            soft_deadline_s=0.05,
        )
        ds, region = _job_dataset("t0000")
        sched.submit_diagnosis(0, region, dataset=ds)
        sched.drain()
        assert sched.report.deadline_misses == 1
        assert sched.report.degraded_rankings == 1
        assert len(sched.diagnoses) == 1
        _, _, explanation = sched.diagnoses[0]
        assert getattr(explanation, "degraded", False)
        assert len(explanation.predicates) == 0
        # the cached-models-only ranking still names the stored cause
        assert explanation.all_cause_scores
        assert explanation.all_cause_scores[0][0] == "storm overload"
        # soft tier alone is not hostile enough to trip the breaker
        time.sleep(0.6)
        assert sched.health.breakers["t0000"].state == "closed"
        sched.close()

    def test_hard_deadline_ejects_and_probe_readmits(self):
        hang = DiagnosisHang(["t0000"], hang_s=0.5)
        sched = FleetScheduler(
            FleetDetector(
                2, ATTRS, capacity=40, window=8, pp_threshold=0.9
            ),
            sherlock=hang.wrap(self._seeded_sherlock()),
            diagnose_jobs=1,
            max_pending=64,
            label_metrics=False,
            soft_deadline_s=0.1,
            hard_deadline_s=0.2,
            breaker_threshold=2,
            breaker_cooldown_rounds=3,
        )
        for j in range(2):
            ds, region = _job_dataset("t0000", seed=j)
            sched.submit_diagnosis(0, region, dataset=ds)
            sched.drain()
            time.sleep(0.7)  # let the zombie worker report its overrun

        assert sched.report.deadline_misses >= 2
        assert sched.report.breaker_opens == 1
        assert sched.health.breakers["t0000"].state == "open"
        assert sched.health.state("t0000") == "ejected"
        assert sched.health.breakers["t0001"].state == "closed"

        # open breaker: shed at admission
        shed_before = sched.report.shed
        ds, region = _job_dataset("t0000", seed=9)
        sched.submit_diagnosis(0, region, dataset=ds)
        sched.drain()
        assert sched.report.shed == shed_before + 1

        # recovery: hang cleared, cooldown elapsed, probe succeeds
        hang.active = False
        rng = np.random.default_rng(3)
        for k in range(5):  # advance rounds past the cooldown, quietly
            times = np.full(2, 1.0 + k)
            values = rng.normal(50.0, 1.0, size=(2, len(ATTRS)))
            sched.run_round(times, values)
        ds, region = _job_dataset("t0000", seed=10)
        sched.submit_diagnosis(0, region, dataset=ds)
        sched.drain()
        assert sched.report.breaker_readmits == 1
        assert sched.health.breakers["t0000"].state == "closed"
        assert sched.health.state("t0000") == "healthy"
        sched.close()


# ----------------------------------------------------------------------
# Partial recovery: skip-and-report, never abort the fleet
# ----------------------------------------------------------------------
class TestPartialRecovery:
    TENANTS = ["alpha", "beta", "gamma", "delta"]

    def _run_durable_fleet(self, tmp_path):
        S = len(self.TENANTS)
        sched = FleetScheduler(
            FleetDetector(S, ATTRS, **DET_KW),
            tenants=self.TENANTS,
            root_dir=tmp_path,
            durable=self.TENANTS,
            checkpoint_every=20,
            label_metrics=False,
        )
        for times, values, active in _storm_source(S, seed=17).take(70):
            sched.run_round(times, values, active)
        states = {
            t: sched.detector.stream_checkpoint(s)
            for s, t in enumerate(self.TENANTS)
        }
        # crash without a final checkpoint: the tail lives in the WALs
        sched._pool.shutdown(wait=True)
        for wal in sched._wals.values():
            wal.close()
        sched.health.close()
        return states

    def test_skip_and_report_names_exactly_the_rotten_tenants(
        self, tmp_path
    ):
        states = self._run_durable_fleet(tmp_path)
        CorruptTenantState(["beta"], mode="checkpoint").apply(tmp_path)
        CorruptTenantState(["gamma"], mode="missing").apply(tmp_path)
        # a torn WAL tail alone is survivable (the reader is tolerant)
        CorruptTenantState(["delta"], mode="wal").apply(tmp_path)

        recovered = FleetScheduler.recover(
            tmp_path, self.TENANTS, label_metrics=False
        )
        report = recovered.recovery_report
        assert report is not None
        assert report.recovered == ["alpha", "delta"]
        assert report.corrupt == ["beta"]
        assert report.missing == ["gamma"]
        assert report.outcome("beta").detail  # says why
        for name in ("alpha", "delta"):
            outcome = report.outcome(name)
            assert outcome.replayed_ticks > 0
            s = self.TENANTS.index(name)
            assert recovered.detector.stream_checkpoint(s) == states[name]
        # skipped tenants come back quarantined on a fresh empty lane
        for name in ("beta", "gamma"):
            assert recovered.health.state(name) == "quarantined"
            assert "recovery" in recovered.health.reason(name)
        # and the partially recovered fleet still ticks all lanes
        src = FleetSimSource(len(self.TENANTS), ATTRS, seed=555)
        for times, values, active in src.take(5):
            tick = recovered.detector.tick(times, values, active)
            assert not tick.lane_errors
        recovered.close()

    def test_zero_recoverable_tenants_still_raises(self, tmp_path):
        self._run_durable_fleet(tmp_path)
        CorruptTenantState(self.TENANTS, mode="missing").apply(tmp_path)
        with pytest.raises(FileNotFoundError):
            FleetScheduler.recover(tmp_path, self.TENANTS, label_metrics=False)

    def test_recovery_report_serializes(self, tmp_path):
        self._run_durable_fleet(tmp_path)
        CorruptTenantState(["beta"], mode="checkpoint").apply(tmp_path)
        recovered = FleetScheduler.recover(
            tmp_path, self.TENANTS, label_metrics=False
        )
        payload = recovered.recovery_report.to_dict()
        assert payload["corrupt"] == ["beta"]
        assert len(payload["outcomes"]) == len(self.TENANTS)
        recovered.close()
