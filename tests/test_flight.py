"""Tests for the fleet flight recorder and incident bundles.

Contracts pinned here:

* tail sampling — boring rounds are discarded wholesale, interesting
  rounds are retained per tenant with their trigger reasons;
* bounded memory — the in-flight ring honours its byte budget (dropped
  events are counted), retained rings honour ``keep_ticks`` and
  ``max_retained_bytes``;
* the rolling-p99 latency trigger stays dormant during warm-up and
  fires only on genuine outliers;
* incident bundles — rate/cap/budget limiters, atomic writes that
  survive injected disk faults without leaving partial bundles, and the
  ``load_bundle``/``explain_bundle`` round trip;
* trigger-anchored windows — the abnormal region starts exactly at the
  trigger round when it falls inside the captured span;
* scheduler integration — a durability transition produces a bundle,
  a clean run produces no ``incidents/`` directory at all.
"""

import json

import numpy as np
import pytest

from repro.faults import fs as fsmod
from repro.faults.fs import FullDisk, StorageShim
from repro.fleet import FleetDetector, FleetScheduler, FleetSimSource
from repro.obs import metrics, trace
from repro.obs.flight import FLEET_TENANT, FlightRecorder
from repro.obs.incident import (
    BUNDLE_VERSION,
    IncidentRecorder,
    explain_bundle,
    list_bundles,
    load_bundle,
)


@pytest.fixture(autouse=True)
def _no_ambient_recorder():
    previous = trace.uninstall()
    yield
    trace.uninstall()
    if previous is not None:
        trace.install(previous)


def _event(name="tick", span_id=None, start=0.0, attrs=None):
    return {
        "name": name,
        "span_id": span_id or f"s-{name}-{start}",
        "trace_id": "t-0",
        "parent_id": None,
        "start_s": start,
        "attrs": attrs or {},
    }


def _counter(name):
    metric = metrics.REGISTRY.get(name)
    if metric is None:
        return 0.0
    if hasattr(metric, "children"):
        return sum(child.value for _v, child in metric.children())
    return metric.value


# ---------------------------------------------------------------------------
# FlightRecorder: tail sampling
# ---------------------------------------------------------------------------
class TestTailSampling:
    def test_boring_rounds_are_discarded(self):
        fr = FlightRecorder()
        fr.begin_round(0)
        fr.record(_event())
        assert fr.end_round({}) == ()
        assert fr.stats() == {
            "tenants": 0, "kept_ticks": 0, "retained_bytes": 0,
        }

    def test_interesting_rounds_are_retained_per_tenant(self):
        fr = FlightRecorder()
        fr.begin_round(7)
        fr.record(_event("fleet.round"))
        fr.record(_event("fleet.tick", start=0.5))
        reasons = fr.end_round({"alpha": ["verdict"], "beta": []})
        assert reasons == ("verdict",)
        assert fr.tenants() == ["alpha"]  # empty reason list = not kept
        [tick] = fr.retained("alpha")
        assert tick["round"] == 7
        assert tick["reasons"] == ["verdict"]
        assert tick["events"] == 2
        assert tick["bytes"] > 0

    def test_span_helpers_feed_the_recorder(self):
        fr = FlightRecorder()
        trace.install(fr)
        try:
            fr.begin_round(0)
            with trace.span("fleet.round", round=0):
                trace.stage("fleet.tick", 0.001, streams=2)
            kept = fr.end_round({"alpha": ["lane_poisoned"]})
        finally:
            trace.uninstall()
        assert kept == ("lane_poisoned",)
        events = fr.bundle_events("alpha")
        assert [e["name"] for e in events] == ["fleet.tick", "fleet.round"]

    def test_ring_byte_budget_drops_oldest_and_counts(self):
        fr = FlightRecorder(max_tick_bytes=512)
        before = _counter("repro_flight_dropped_events_total")
        fr.begin_round(0)
        for i in range(64):
            fr.record(_event(f"span{i:03d}", start=float(i)))
        dropped = _counter("repro_flight_dropped_events_total") - before
        assert dropped > 0
        kept = fr.end_round({"alpha": ["verdict"]})
        assert kept == ("verdict",)
        events = fr.bundle_events("alpha")
        # the oldest events were dropped, the newest survived
        assert events[-1]["name"] == "span063"
        assert len(events) == 64 - int(dropped)

    def test_latency_p99_trigger_arms_after_warmup(self):
        fr = FlightRecorder(p99_window=64, min_latency_samples=8)
        for i in range(7):
            fr.begin_round(i)
            assert fr.end_round({}, latency_s=0.010) == ()
        # 8th sample arms the trigger; a 10x outlier fires it
        fr.begin_round(7)
        assert fr.end_round({}, latency_s=0.010) == ()
        fr.begin_round(8)
        assert fr.end_round({}, latency_s=0.100) == ("latency_p99",)
        assert fr.tenants() == [FLEET_TENANT]

    def test_keep_ticks_ring_evicts_oldest(self):
        fr = FlightRecorder(keep_ticks=2)
        for round_no in range(4):
            fr.begin_round(round_no)
            fr.record(_event(start=float(round_no)))
            fr.end_round({"alpha": ["verdict"]})
        rounds = [t["round"] for t in fr.retained("alpha")]
        assert rounds == [2, 3]

    def test_retained_byte_ceiling_evicts(self):
        fr = FlightRecorder(keep_ticks=64, max_retained_bytes=1024)
        for round_no in range(32):
            fr.begin_round(round_no)
            for j in range(4):
                fr.record(_event(f"e{round_no}-{j}", start=float(j)))
            fr.end_round({"alpha": ["verdict"]})
        stats = fr.stats()
        assert stats["kept_ticks"] < 32
        assert stats["retained_bytes"] <= 1024 + 1024  # one tick of slack

    def test_bundle_events_merges_fleet_and_dedups(self):
        fr = FlightRecorder()
        fr.begin_round(0)
        shared = _event("fleet.round", span_id="shared", start=1.0)
        fr.record(_event("early", span_id="a", start=0.0))
        fr.record(shared)
        # retained under both the tenant and the _fleet pseudo-tenant
        fr.end_round({"alpha": ["verdict"], FLEET_TENANT: ["latency_p99"]})
        events = fr.bundle_events("alpha")
        assert [e["span_id"] for e in events] == ["a", "shared"]

    def test_clear_drops_everything(self):
        fr = FlightRecorder()
        fr.begin_round(0)
        fr.record(_event())
        fr.end_round({"alpha": ["verdict"]})
        fr.clear()
        assert fr.stats() == {
            "tenants": 0, "kept_ticks": 0, "retained_bytes": 0,
        }
        assert fr.bundle_events("alpha") == []


# ---------------------------------------------------------------------------
# IncidentRecorder: limiters and durability
# ---------------------------------------------------------------------------
def _flight_with_keep(tenant="alpha"):
    fr = FlightRecorder()
    fr.begin_round(3)
    fr.record(_event("fleet.round", start=0.0))
    fr.end_round({tenant: ["verdict"]})
    return fr


def _ring_with_step(registry=None, n=16, step_at=8):
    """A timeline ring whose one counter jumps at ``step_at``."""
    registry = registry or metrics.MetricsRegistry()
    counter = registry.counter("repro_test_step_total", "step")
    ring = metrics.TimelineRing(registry, max_samples=64)
    for i in range(n):
        if i >= step_at:
            counter.inc(5)
        ring.sample(t=float(i))
    return ring


class TestIncidentRecorder:
    def test_bundle_layout_and_manifest(self, tmp_path):
        recorder = IncidentRecorder(
            tmp_path,
            flight=_flight_with_keep(),
            timeline=_ring_with_step(),
        )
        path = recorder.snapshot(
            "alpha", "durability degraded: full disk", 8,
            context={"round": 8},
        )
        assert path is not None and path.is_dir()
        assert sorted(p.name for p in path.iterdir()) == [
            "health.jsonl", "incident.json", "spans.jsonl", "timeline.json",
        ]
        bundle = load_bundle(path)
        manifest = bundle["manifest"]
        assert manifest["version"] == BUNDLE_VERSION
        assert manifest["tenant"] == "alpha"
        assert manifest["round"] == 8
        assert manifest["context"] == {"round": 8}
        assert manifest["spans"] == len(bundle["spans"]) == 1
        assert bundle["timeline"]["samples"]
        assert list_bundles(tmp_path) == [path]
        stats = recorder.stats()
        assert stats["bundles"] == 1 and stats["bytes"] > 0

    def test_rate_limiter_mutes_repeat_triggers(self, tmp_path):
        recorder = IncidentRecorder(tmp_path, min_rounds_between=8)
        before = _counter("repro_incident_skipped_total")
        assert recorder.snapshot("alpha", "boom", 10) is not None
        assert recorder.snapshot("alpha", "boom again", 12) is None
        assert recorder.snapshot("alpha", "boom later", 18) is not None
        assert _counter("repro_incident_skipped_total") == before + 1

    def test_per_tenant_cap(self, tmp_path):
        recorder = IncidentRecorder(
            tmp_path, max_bundles_per_tenant=1, min_rounds_between=1
        )
        assert recorder.snapshot("alpha", "first", 1) is not None
        assert recorder.snapshot("alpha", "second", 10) is None
        # other tenants are unaffected
        assert recorder.snapshot("beta", "first", 10) is not None

    def test_global_byte_budget(self, tmp_path):
        recorder = IncidentRecorder(
            tmp_path, max_total_bytes=1, min_rounds_between=1
        )
        # the first bundle may overshoot the budget by its own size...
        assert recorder.snapshot("alpha", "first", 1) is not None
        # ...but once spent, every further snapshot is suppressed
        assert recorder.snapshot("beta", "second", 2) is None
        assert len(list_bundles(tmp_path)) == 1

    def test_disk_fault_leaves_no_partial_bundle(self, tmp_path):
        recorder = IncidentRecorder(tmp_path, min_rounds_between=1)
        with fsmod.scoped_fs(StorageShim([FullDisk()])):
            assert recorder.snapshot("alpha", "boom", 1) is None
        assert list_bundles(tmp_path) == []
        # the reserved slot was released: a later attempt succeeds
        assert recorder.snapshot("alpha", "boom", 5) is not None

    def test_explain_bundle_round_trip(self, tmp_path):
        recorder = IncidentRecorder(
            tmp_path, timeline=_ring_with_step(n=16, step_at=8)
        )
        path = recorder.snapshot("alpha", "step change", 8)
        explanation, dataset, spec = explain_bundle(path)
        assert dataset.name == "incident:alpha"
        assert spec.abnormal[0].start >= 8.0
        # no causal models loaded: predicates only, and the stepped
        # counter's rate is the separating attribute
        assert any(
            "repro_test_step_total" in p.attr
            for p in explanation.predicates
        )

    def test_explain_rejects_timeline_free_bundle(self, tmp_path):
        recorder = IncidentRecorder(tmp_path)  # no timeline attached
        path = recorder.snapshot("alpha", "no evidence", 1)
        with pytest.raises(ValueError):
            explain_bundle(path)


class TestTriggerAnchoredWindow:
    def _window(self, times, round_no, **kwargs):
        recorder = IncidentRecorder("unused", **kwargs)
        samples = [(float(t), {}) for t in times]
        return recorder._window(samples, round_no)

    def test_anchors_at_trigger_round(self):
        window = self._window(range(10), 6)
        assert window["normal"] == [0.0, 5.0]
        assert window["abnormal"] == [6.0, 9.0]
        assert window["trigger_round"] == 6

    def test_trigger_outside_span_falls_back_to_trailing_quarter(self):
        window = self._window(range(10), 42)
        assert window["abnormal"] == [8.0, 9.0]
        assert window["normal"] == [0.0, 7.0]

    def test_trigger_at_edge_falls_back(self):
        # anchoring at the very last sample would leave no post-trigger
        # evidence — fall back to the trailing quarter instead
        window = self._window(range(10), 9)
        assert window["normal"] == [0.0, 7.0]
        assert window["abnormal"] == [8.0, 9.0]

    def test_too_few_samples_yields_no_window(self):
        window = self._window(range(3), 1)
        assert window["normal"] is None and window["abnormal"] is None


# ---------------------------------------------------------------------------
# TimelineRing
# ---------------------------------------------------------------------------
class TestTimelineRing:
    def test_monotonicizes_timestamps(self):
        ring = metrics.TimelineRing(
            metrics.MetricsRegistry(), max_samples=8, interval=1.0
        )
        assert ring.sample(t=5.0) == 5.0
        assert ring.sample(t=5.0) == 6.0  # same stamp advances
        assert ring.sample() == 7.0  # unstamped continues
        assert ring.sample(t=2.0) == 8.0  # regression clamps forward

    def test_bounded_and_windowed(self):
        ring = metrics.TimelineRing(metrics.MetricsRegistry(), max_samples=4)
        for i in range(10):
            ring.sample(t=float(i))
        assert len(ring) == 4
        window = ring.window(2)
        assert [t for t, _row in window] == [8.0, 9.0]

    def test_clear(self):
        ring = metrics.TimelineRing(metrics.MetricsRegistry(), max_samples=4)
        ring.sample()
        ring.clear()
        assert len(ring) == 0 and ring.kinds() == {}


# ---------------------------------------------------------------------------
# Scheduler integration
# ---------------------------------------------------------------------------
def _quiet_fleet(root, tenants, attrs, durable=(), **kwargs):
    detector = FleetDetector(
        len(tenants), attrs, capacity=40, window=8, pp_threshold=0.9
    )
    return FleetScheduler(
        detector,
        tenants=tenants,
        sherlock=None,
        root_dir=root,
        durable=durable,
        fsync_every=1,
        label_metrics=False,
        **kwargs,
    )


class TestSchedulerIntegration:
    ATTRS = ["m0", "m1"]
    TENANTS = ["t00", "t01", "t02"]

    def test_durability_transition_writes_one_bundle(self, tmp_path):
        metrics.REGISTRY.reset()
        sched = _quiet_fleet(
            tmp_path,
            self.TENANTS,
            self.ATTRS,
            durable=["t01"],
            storage_probe_every=2,
            flight=FlightRecorder(),
            incidents=IncidentRecorder(tmp_path, min_rounds_between=4),
            incident_capture_rounds=2,
            timeline_every=1,
        )
        src = FleetSimSource(
            len(self.TENANTS), self.ATTRS, seed=3, anomaly_fraction=0.0
        )
        fault = FullDisk(path_filter=str(tmp_path / "t01" / "ticks.wal"))
        fault.active = False
        with fsmod.scoped_fs(StorageShim([fault])):
            for i, (times, values, active) in enumerate(src.take(24)):
                fault.active = 8 <= i < 16
                sched.run_round(times, values, active)
            sched.drain()
            sched.close()
        bundles = list_bundles(tmp_path)
        assert len(bundles) == 1
        manifest = load_bundle(bundles[0])["manifest"]
        assert manifest["tenant"] == "t01"
        assert "durability degraded" in manifest["reason"]
        # the bundle froze the health journal tail alongside the spans
        assert any(
            rec.get("to") == "degraded"
            for rec in load_bundle(bundles[0])["health"]
        )

    def test_clean_run_writes_nothing(self, tmp_path):
        metrics.REGISTRY.reset()
        sched = _quiet_fleet(
            tmp_path,
            self.TENANTS,
            self.ATTRS,
            flight=FlightRecorder(),
            incidents=IncidentRecorder(tmp_path),
            timeline_every=1,
        )
        src = FleetSimSource(
            len(self.TENANTS), self.ATTRS, seed=3, anomaly_fraction=0.0
        )
        for times, values, active in src.take(16):
            sched.run_round(times, values, active)
        sched.close()
        assert not (tmp_path / "incidents").exists()

    def test_flight_recorder_installs_and_uninstalls(self, tmp_path):
        sched = _quiet_fleet(
            tmp_path, self.TENANTS, self.ATTRS, flight=FlightRecorder()
        )
        assert trace.get_recorder() is sched.flight
        sched.close()
        assert trace.get_recorder() is None
