"""Unit tests for Algorithm 1 end to end (Section 4)."""

import numpy as np
import pytest

from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.core.predicates import CategoricalPredicate, NumericPredicate
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec


def step_dataset(noise=0.0, seed=0, n=120, lo=10.0, hi=50.0):
    """metric jumps lo -> hi in rows 60..89; optional categorical flip."""
    rng = np.random.default_rng(seed)
    values = np.full(n, lo) + rng.normal(0, noise, n)
    values[60:90] = hi + rng.normal(0, noise, 30)
    mode = np.asarray(["steady"] * n, dtype=object)
    mode[60:90] = "burst"
    return (
        Dataset(np.arange(n, dtype=float),
                numeric={"m": values, "flat": np.full(n, 3.0)},
                categorical={"mode": mode}),
        RegionSpec(abnormal=[Region(60.0, 89.0)]),
    )


class TestNumericGeneration:
    def test_step_yields_gt_predicate(self):
        ds, spec = step_dataset()
        conj = PredicateGenerator().generate(ds, spec, attributes=["m"])
        assert len(conj) == 1
        pred = conj.predicates[0]
        assert isinstance(pred, NumericPredicate)
        assert pred.direction == "gt"
        assert 10.0 < pred.lower < 50.0

    def test_downward_step_yields_lt_predicate(self):
        ds, spec = step_dataset(lo=50.0, hi=10.0)
        conj = PredicateGenerator().generate(ds, spec, attributes=["m"])
        pred = conj.predicates[0]
        assert pred.direction == "lt"
        assert 10.0 < pred.upper < 50.0

    def test_flat_attribute_produces_nothing(self):
        ds, spec = step_dataset()
        conj = PredicateGenerator().generate(ds, spec, attributes=["flat"])
        assert len(conj) == 0

    def test_theta_gate_blocks_small_shifts(self):
        ds, spec = step_dataset(lo=10.0, hi=11.0, noise=0.0)
        # spike attribute to widen the range so the shift is small relative
        values = ds.column("m").copy()
        values[0] = 0.0
        values[1] = 100.0
        ds2 = Dataset(ds.timestamps, numeric={"m": values})
        conj = PredicateGenerator(GeneratorConfig(theta=0.5)).generate(
            ds2, spec, attributes=["m"]
        )
        assert len(conj) == 0

    def test_interior_anomaly_yields_range_predicate(self):
        # abnormal values sit strictly between two normal clusters
        n = 120
        values = np.concatenate([
            np.full(30, 0.0), np.full(30, 100.0),
            np.full(30, 50.0),  # abnormal, interior values
            np.full(30, 0.0),
        ])
        ds = Dataset(np.arange(n, dtype=float), numeric={"m": values})
        spec = RegionSpec(abnormal=[Region(60.0, 89.0)])
        conj = PredicateGenerator().generate(ds, spec, attributes=["m"])
        if conj:  # range extraction is legitimate here
            pred = conj.predicates[0]
            assert pred.direction == "range"
            assert pred.lower < 50.0 < pred.upper

    def test_survives_noise(self):
        ds, spec = step_dataset(noise=2.0, seed=3)
        conj = PredicateGenerator().generate(ds, spec, attributes=["m"])
        assert len(conj) == 1

    def test_artifacts_record_rejections(self):
        ds, spec = step_dataset()
        arts = PredicateGenerator().generate_with_artifacts(
            ds, spec, attributes=["flat"]
        )
        assert arts["flat"].predicate is None
        assert arts["flat"].rejection is not None

    def test_artifacts_record_normalized_difference(self):
        ds, spec = step_dataset()
        arts = PredicateGenerator().generate_with_artifacts(
            ds, spec, attributes=["m"]
        )
        assert arts["m"].normalized_difference == pytest.approx(1.0, abs=0.05)

    def test_invalid_spec_rejected(self):
        ds, _ = step_dataset()
        with pytest.raises(ValueError):
            PredicateGenerator().generate(
                ds, RegionSpec(abnormal=[Region(999.0, 1000.0)])
            )


class TestCategoricalGeneration:
    def test_flip_yields_in_predicate(self):
        ds, spec = step_dataset()
        conj = PredicateGenerator().generate(ds, spec, attributes=["mode"])
        pred = conj.predicates[0]
        assert isinstance(pred, CategoricalPredicate)
        assert pred.categories == frozenset({"burst"})

    def test_invariant_categorical_produces_nothing(self):
        n = 120
        ds = Dataset(
            np.arange(n, dtype=float),
            numeric={},
            categorical={"ver": ["5.6"] * n},
        )
        spec = RegionSpec(abnormal=[Region(60.0, 89.0)])
        conj = PredicateGenerator().generate(ds, spec, attributes=["ver"])
        # the invariant has more normal than abnormal rows -> Normal label
        assert len(conj) == 0


class TestAblationSwitches:
    def noisy_mixed(self):
        """Attribute whose raw labels interleave heavily without filtering."""
        rng = np.random.default_rng(5)
        n = 200
        values = rng.normal(10.0, 1.0, n)
        values[100:150] = rng.normal(14.0, 1.0, 50)
        ds = Dataset(np.arange(n, dtype=float), numeric={"m": values})
        return ds, RegionSpec(abnormal=[Region(100.0, 149.0)])

    def test_disable_fill_blocks_extraction(self):
        ds, spec = self.noisy_mixed()
        config = GeneratorConfig(enable_fill=False)
        conj = PredicateGenerator(config).generate(ds, spec, attributes=["m"])
        # without gap filling, abnormal partitions rarely form one block
        full = PredicateGenerator().generate(ds, spec, attributes=["m"])
        assert len(conj) <= len(full)

    def test_disable_both_is_weaker_or_equal(self):
        ds, spec = self.noisy_mixed()
        config = GeneratorConfig(enable_fill=False, enable_filtering=False)
        conj = PredicateGenerator(config).generate(ds, spec, attributes=["m"])
        assert len(conj) == 0

    def test_config_replace(self):
        config = GeneratorConfig().replace(theta=0.05)
        assert config.theta == 0.05
        assert config.n_partitions == GeneratorConfig().n_partitions


class TestWholeDataset:
    def test_generates_over_all_attributes_by_default(self):
        ds, spec = step_dataset()
        conj = PredicateGenerator().generate(ds, spec)
        attrs = set(conj.attributes)
        assert "m" in attrs and "mode" in attrs and "flat" not in attrs

    def test_predicates_cover_abnormal_rows(self):
        ds, spec = step_dataset(noise=1.0, seed=9)
        conj = PredicateGenerator().generate(ds, spec)
        covered = conj.evaluate(ds)
        abnormal = spec.abnormal_mask(ds)
        # recall of the conjunction on its own training data is high
        assert (covered & abnormal).sum() / abnormal.sum() > 0.8
