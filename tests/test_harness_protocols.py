"""Tests for the experiment-protocol helpers in repro.eval.harness."""

import numpy as np
import pytest

from repro.eval.harness import (
    build_merged_models,
    build_suite,
    evaluate_single_models,
    simulate_run,
)


@pytest.fixture(scope="module")
def mini_suite():
    """Two causes x two durations: enough to exercise every protocol."""
    return build_suite(
        durations=[30, 45],
        anomaly_keys=["cpu_saturation", "network_congestion"],
        seed=777,
    )


class TestSuite:
    def test_causes_resolved(self, mini_suite):
        assert set(mini_suite) == {"CPU Saturation", "Network Congestion"}

    def test_dataset_sizes(self, mini_suite):
        for runs in mini_suite.values():
            assert runs[0].dataset.n_rows == 150  # 120 normal + 30
            assert runs[1].dataset.n_rows == 165

    def test_ground_truth_matches_duration(self, mini_suite):
        for runs in mini_suite.values():
            for run in runs:
                region = run.spec.abnormal[0]
                assert region.duration + 1 == run.duration_s

    def test_intensity_varies_between_runs(self):
        # different seeds draw different incident intensities
        # the anomaly window is rows 30..59 (normal_s // 2 onward)
        d1, _, _ = simulate_run("cpu_saturation", 30, seed=1, normal_s=60)
        d2, _, _ = simulate_run("cpu_saturation", 30, seed=2, normal_s=60)
        cpu1 = d1.column("os.cpu_usage")[35:55].mean()
        cpu2 = d2.column("os.cpu_usage")[35:55].mean()
        assert cpu1 != pytest.approx(cpu2, abs=0.5)

    def test_pinned_intensity_reproducible(self):
        d1, _, _ = simulate_run("cpu_saturation", 30, seed=1, normal_s=60,
                                intensity=1.0)
        d2, _, _ = simulate_run("cpu_saturation", 30, seed=1, normal_s=60,
                                intensity=1.0)
        assert np.allclose(d1.column("os.cpu_usage"), d2.column("os.cpu_usage"))


class TestSingleModelProtocol:
    def test_results_per_cause(self, mini_suite):
        results = evaluate_single_models(mini_suite)
        assert {r.cause for r in results} == set(mini_suite)

    def test_scores_in_range(self, mini_suite):
        for result in evaluate_single_models(mini_suite):
            assert -1.0 <= result.mean_margin <= 1.0
            assert 0.0 <= result.mean_f1 <= 1.0
            assert 0.0 <= result.top1_accuracy <= 1.0

    def test_distinct_causes_separate(self, mini_suite):
        # CPU saturation vs network congestion have orthogonal signatures
        results = evaluate_single_models(mini_suite)
        assert all(r.top1_accuracy == 1.0 for r in results)

    def test_max_models_cap(self, mini_suite):
        capped = evaluate_single_models(mini_suite, max_models_per_cause=1)
        assert {r.cause for r in capped} == set(mini_suite)


class TestMergedProtocol:
    def test_merged_models_one_per_cause(self, mini_suite):
        models = build_merged_models(
            mini_suite, {cause: [0, 1] for cause in mini_suite}
        )
        assert {m.cause for m in models} == set(mini_suite)
        assert all(m.n_merged == 2 for m in models)

    def test_merged_predicates_subset_of_common_attributes(self, mini_suite):
        from repro.eval.harness import build_model

        for cause, runs in mini_suite.items():
            m0 = build_model(runs[0], theta=0.05)
            m1 = build_model(runs[1], theta=0.05)
            merged = m0.merge(m1)
            assert set(merged.attributes) <= (
                set(m0.attributes) & set(m1.attributes)
            )
