"""Integration tests: the full DBSherlock workflow on simulated telemetry."""

import numpy as np
import pytest

from repro import DBSherlock, GeneratorConfig, MYSQL_LINUX_RULES
from repro.anomalies import CompoundAnomaly, make_anomaly
from repro.anomalies.base import ScheduledAnomaly
from repro.baselines import PerfXplain
from repro.engine import simulate_telemetry
from repro.eval.harness import simulate_run
from repro.eval.metrics import score_predicates
from repro.workload import tpcc_workload


class TestSignatures:
    """Each anomaly's predicates surface the metrics the paper names."""

    def test_cpu_saturation_predicates(self, cpu_run):
        ds, spec, _ = cpu_run
        explanation = DBSherlock().explain(ds, spec)
        attrs = set(explanation.predicates.attributes)
        assert "os.cpu_usage" in attrs
        # external hog: the DBMS's own CPU is NOT implicated
        assert "mysql.cpu_usage" not in attrs

    def test_network_congestion_predicates(self, network_run):
        ds, spec, _ = network_run
        explanation = DBSherlock().explain(ds, spec)
        attrs = set(explanation.predicates.attributes)
        # Section 1: fewer packets sent/received, clients waiting, low CPU
        assert "txn.client_wait_ms" in attrs
        assert any(a.startswith("os.network") or a == "os.ping_rtt_ms"
                   for a in attrs)

    def test_network_congestion_direction(self, network_run):
        ds, spec, _ = network_run
        explanation = DBSherlock().explain(ds, spec)
        by_attr = {p.attr: p for p in explanation.predicates}
        if "os.network_send_mb" in by_attr:
            assert by_attr["os.network_send_mb"].direction == "lt"

    def test_lock_contention_predicates(self, lock_run):
        ds, spec, _ = lock_run
        explanation = DBSherlock().explain(ds, spec)
        attrs = set(explanation.predicates.attributes)
        assert any("row_lock" in a for a in attrs)

    def test_poorly_written_query_signature(self):
        ds, spec, _ = simulate_run("poorly_written_query", 40, seed=21)
        explanation = DBSherlock().explain(ds, spec)
        attrs = set(explanation.predicates.attributes)
        # Section 1: next-row-read-requests and DBMS CPU usage rise
        assert "mysql.handler_read_rnd_next" in attrs
        assert "mysql.cpu_usage" in attrs


class TestFeedbackWorkflow:
    def test_cross_cause_diagnosis(self, cpu_run, network_run):
        sherlock = DBSherlock(config=GeneratorConfig(theta=0.05))
        for run, label in ((cpu_run, "CPU"), (network_run, "NET")):
            ds, spec, _ = run
            sherlock.feedback(label, sherlock.explain(ds, spec))

        ds, spec, _ = simulate_run("cpu_saturation", 60, seed=42)
        ranked = sherlock.diagnose(ds, spec, top_k=2)
        assert ranked[0][0] == "CPU"
        assert ranked[0][1] > ranked[1][1]

    def test_domain_knowledge_prunes_os_cpu(self, cpu_run):
        ds, spec, _ = cpu_run
        plain = DBSherlock().explain(ds, spec)
        informed = DBSherlock(rules=MYSQL_LINUX_RULES).explain(ds, spec)
        # rule 4 (OS CPU Usage -> OS CPU Idle) fires on CPU saturation
        assert len(informed.predicates) <= len(plain.predicates)

    def test_predicates_transfer_across_durations(self):
        train, train_spec, _ = simulate_run("io_saturation", 40, seed=31)
        test, test_spec, _ = simulate_run("io_saturation", 70, seed=32)
        sherlock = DBSherlock(config=GeneratorConfig(theta=0.05))
        model = sherlock.feedback("IO", sherlock.explain(train, train_spec))
        confidence = model.confidence(test, test_spec)
        assert confidence > 0.5


class TestCompoundSituations:
    def test_compound_signature_includes_both(self):
        compound = CompoundAnomaly(
            [make_anomaly("cpu_saturation"), make_anomaly("network_congestion")]
        )
        ds, spec = simulate_telemetry(
            tpcc_workload(),
            duration_s=160,
            anomalies=[ScheduledAnomaly(compound, 60.0, 100.0)],
            seed=51,
        )
        explanation = DBSherlock().explain(ds, spec)
        attrs = set(explanation.predicates.attributes)
        assert "os.cpu_usage" in attrs
        assert "os.ping_rtt_ms" in attrs


class TestVersusPerfXplain:
    def test_dbsherlock_competitive_on_weak_signature(self):
        # Poor Physical Design moves several write metrics under the 50 %
        # pairwise-significance cut; scores follow the Figure 9 protocol:
        # per-predicate precision/recall averaged over the explanation.
        from repro.eval.metrics import score_predicates_mean

        train, train_spec, _ = simulate_run("poor_physical_design", 50, seed=61)
        test, test_spec, _ = simulate_run("poor_physical_design", 60, seed=62)

        sherlock = DBSherlock(config=GeneratorConfig(theta=0.05))
        model = sherlock.feedback("PD", sherlock.explain(train, train_spec))
        db = score_predicates_mean(model.predicates, test, test_spec)

        px = PerfXplain().fit([train], [train_spec], seed=0)
        actual = test_spec.abnormal_mask(test)
        f1s = []
        for mask in px.feature_masks(test):
            tp = float((mask & actual).sum())
            precision = tp / mask.sum() if mask.any() else 0.0
            recall = tp / actual.sum()
            f1s.append(
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )
        px_f1 = float(np.mean(f1s)) if f1s else 0.0
        # DBSherlock transfers meaningfully on this weak-signature cause;
        # the full cross-cause comparison (where DBSherlock wins on
        # average, Figure 9) lives in benchmarks/bench_fig9_perfxplain.py.
        assert db.f1 > 0.5
        assert px_f1 >= 0.0


class TestRobustness:
    def test_imperfect_region_still_diagnosed(self, cpu_run):
        ds, spec, _ = cpu_run
        sherlock = DBSherlock(config=GeneratorConfig(theta=0.05))
        sherlock.feedback("CPU", sherlock.explain(ds, spec))

        ds2, spec2, _ = simulate_run("cpu_saturation", 50, seed=71)
        sloppy = spec2.perturbed(0.1)
        ranked = sherlock.diagnose(ds2, sloppy, top_k=1)
        assert ranked[0][0] == "CPU"

    def test_two_second_region(self, cpu_run):
        ds, spec, _ = cpu_run
        sherlock = DBSherlock(config=GeneratorConfig(theta=0.05))
        sherlock.feedback("CPU", sherlock.explain(ds, spec))

        ds2, spec2, _ = simulate_run("cpu_saturation", 50, seed=72)
        sliver = spec2.sliced(2.0, np.random.default_rng(0))
        ranked = sherlock.diagnose(ds2, sliver, top_k=1)
        assert ranked and ranked[0][1] > 0.0
