"""Unit tests for domain knowledge and secondary-symptom pruning (Section 5)."""

import numpy as np
import pytest

from repro.core.knowledge import (
    DomainRule,
    MYSQL_LINUX_RULES,
    entropy,
    independence_factor,
    joint_entropy,
    mutual_information,
    prune_secondary_symptoms,
    validate_rules,
)
from repro.core.predicates import NumericPredicate
from repro.data.dataset import Dataset


class TestDomainRule:
    def test_self_rule_rejected(self):
        with pytest.raises(ValueError):
            DomainRule("a", "a")

    def test_inverse_pair_rejected(self):
        with pytest.raises(ValueError):
            validate_rules([DomainRule("a", "b"), DomainRule("b", "a")])

    def test_valid_rules_pass(self):
        validate_rules(MYSQL_LINUX_RULES)

    def test_str(self):
        assert str(DomainRule("x", "y")) == "x → y"

    def test_builtin_rules_match_paper(self):
        pairs = {(r.cause_attr, r.effect_attr) for r in MYSQL_LINUX_RULES}
        assert ("mysql.cpu_usage", "os.cpu_usage") in pairs
        assert len(MYSQL_LINUX_RULES) == 4


class TestEntropy:
    def test_constant_has_zero_entropy(self):
        assert entropy(np.full(100, 5.0)) == 0.0

    def test_uniform_two_values_is_one_bit(self):
        values = np.asarray([0.0] * 50 + [100.0] * 50)
        assert entropy(values, bins=2) == pytest.approx(1.0)

    def test_categorical_entropy(self):
        values = np.asarray(["a", "b"] * 50, dtype=object)
        assert entropy(values, is_numeric=False) == pytest.approx(1.0)

    def test_joint_entropy_of_identical_equals_marginal(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500)
        assert joint_entropy(x, x, bins=20) == pytest.approx(
            entropy(x, bins=20), abs=1e-9
        )


class TestMutualInformation:
    def test_independent_attributes_near_zero(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=5000)
        y = rng.normal(size=5000)
        assert mutual_information(x, y, bins=10) < 0.1

    def test_identical_attributes_equal_entropy(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=1000)
        assert mutual_information(x, x, bins=20) == pytest.approx(
            entropy(x, bins=20), abs=1e-9
        )

    def test_non_negative(self):
        rng = np.random.default_rng(3)
        x, y = rng.normal(size=200), rng.normal(size=200)
        assert mutual_information(x, y) >= 0.0


class TestIndependenceFactor:
    def test_identical_is_one(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=1000)
        assert independence_factor(x, x, bins=20) == pytest.approx(1.0)

    def test_independent_is_near_zero(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=5000)
        y = rng.normal(size=5000)
        assert independence_factor(x, y, bins=10) < 0.05

    def test_constant_attribute_defined_as_zero(self):
        x = np.full(100, 1.0)
        y = np.arange(100.0)
        assert independence_factor(x, y) == 0.0

    def test_linear_dependence_is_high(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=2000)
        y = 3.0 * x + rng.normal(scale=0.01, size=2000)
        assert independence_factor(x, y, bins=20) > 0.5


class TestPruning:
    def dependent_dataset(self):
        rng = np.random.default_rng(7)
        n = 400
        cause = rng.normal(10, 3, n)
        effect = 2.0 * cause + rng.normal(0, 0.05, n)
        unrelated = rng.normal(5, 1, n)
        return Dataset(
            np.arange(n, dtype=float),
            numeric={"cause": cause, "effect": effect, "other": unrelated},
        )

    def predicates(self):
        return [
            NumericPredicate("cause", lower=1.0),
            NumericPredicate("effect", lower=1.0),
            NumericPredicate("other", lower=1.0),
        ]

    def test_dependent_effect_pruned(self):
        kept, pruned = prune_secondary_symptoms(
            self.predicates(),
            self.dependent_dataset(),
            [DomainRule("cause", "effect")],
        )
        assert [p.attr for p in pruned] == ["effect"]
        assert {p.attr for p in kept} == {"cause", "other"}

    def test_independent_rule_does_not_fire(self):
        kept, pruned = prune_secondary_symptoms(
            self.predicates(),
            self.dependent_dataset(),
            [DomainRule("cause", "other")],
        )
        assert pruned == []

    def test_rule_without_both_predicates_ignored(self):
        kept, pruned = prune_secondary_symptoms(
            [NumericPredicate("effect", lower=1.0)],
            self.dependent_dataset(),
            [DomainRule("cause", "effect")],
        )
        assert pruned == []

    def test_rule_with_missing_attribute_ignored(self):
        kept, pruned = prune_secondary_symptoms(
            self.predicates(),
            self.dependent_dataset(),
            [DomainRule("cause", "ghost")],
        )
        assert pruned == []

    def test_no_rules_keeps_everything(self):
        preds = self.predicates()
        kept, pruned = prune_secondary_symptoms(
            preds, self.dependent_dataset(), []
        )
        assert kept == preds and pruned == []

    def test_kappa_threshold_controls_firing(self):
        # with an impossible threshold the dependent rule cannot fire
        kept, pruned = prune_secondary_symptoms(
            self.predicates(),
            self.dependent_dataset(),
            [DomainRule("cause", "effect")],
            kappa_threshold=1.1,
        )
        assert pruned == []
