"""Unit tests for CSV persistence."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.loader import load_dataset_csv, save_dataset_csv


def sample():
    return Dataset(
        [0.0, 1.0, 2.0],
        numeric={"a": [1.5, 2.5, 3.5], "b": [0.0, 0.0, 1e-9]},
        categorical={"c": ["x", "y", "x"]},
        name="sample",
    )


class TestRoundTrip:
    def test_shape_preserved(self, tmp_path):
        path = tmp_path / "d.csv"
        save_dataset_csv(sample(), path)
        loaded = load_dataset_csv(path)
        assert loaded.n_rows == 3
        assert loaded.numeric_attributes == ["a", "b"]
        assert loaded.categorical_attributes == ["c"]

    def test_values_preserved(self, tmp_path):
        path = tmp_path / "d.csv"
        save_dataset_csv(sample(), path)
        loaded = load_dataset_csv(path)
        assert np.allclose(loaded.column("a"), [1.5, 2.5, 3.5])
        assert list(loaded.column("c")) == ["x", "y", "x"]

    def test_timestamps_preserved(self, tmp_path):
        path = tmp_path / "d.csv"
        save_dataset_csv(sample(), path)
        assert np.allclose(load_dataset_csv(path).timestamps, [0.0, 1.0, 2.0])

    def test_name_from_stem(self, tmp_path):
        path = tmp_path / "incident.csv"
        save_dataset_csv(sample(), path)
        assert load_dataset_csv(path).name == "incident"

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "d.csv"
        save_dataset_csv(sample(), path)
        assert load_dataset_csv(path, name="n").name == "n"

    def test_numeric_looking_categorical_preserved(self, tmp_path):
        ds = Dataset([0.0, 1.0], categorical={"code": ["1", "2"]})
        path = tmp_path / "d.csv"
        save_dataset_csv(ds, path)
        loaded = load_dataset_csv(path)
        # the #types line prevents the '1'/'2' strings becoming floats
        assert loaded.categorical_attributes == ["code"]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "d.csv"
        save_dataset_csv(sample(), path)
        assert path.exists()


class TestUntypedFiles:
    def test_type_inference_without_header(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("timestamp,a,c\n0,1.5,x\n1,2.5,y\n")
        loaded = load_dataset_csv(path)
        assert loaded.is_numeric("a")
        assert not loaded.is_numeric("c")

    def test_missing_timestamp_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,a\n0,1\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,a\n0,1\n1\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)

    def test_types_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("#types,numeric\ntimestamp,a\n0,1\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)
