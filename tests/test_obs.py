"""Tests for the self-observation layer (tracing, metrics, dogfood).

Contracts pinned here:

* span nesting — parent/child links hold within a process and across
  ``parallel_map`` workers (via the shared JSON-lines sink);
* the disabled path records nothing: ``span()`` hands back one shared
  no-op object and no event or attribute dict is ever materialised;
* exporters — Prometheus text and JSON snapshots are byte-stable for a
  known registry state;
* dogfood — a :class:`~repro.obs.dogfood.MetricsTimeline` round-trips
  ``regularize_dataset`` with zero missing values and correct deltas;
* satellites — alias-store persistence and learning, supervisor report
  ``asdict``, cache eviction/resident-byte accounting and the
  stats-reset-after-``clear()`` fix.
"""

import json
import os

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.preprocess import regularize_dataset
from repro.obs import dogfood, metrics, trace
from repro.obs.report import render_report, span_tree
from repro.perf.parallel import parallel_map
from repro.schema.aliases import AliasStore


@pytest.fixture(autouse=True)
def _no_ambient_recorder():
    """Tests must not leak a recorder into (or inherit one from) others."""
    previous = trace.uninstall()
    yield
    trace.uninstall()
    if previous is not None:
        trace.install(previous)


# ---------------------------------------------------------------------------
# Tracing: spans, nesting, schema
# ---------------------------------------------------------------------------
class TestSpanNesting:
    def test_parent_child_links(self):
        with trace.recording() as recorder:
            with trace.span("outer", depth=0):
                with trace.span("inner") as sp:
                    sp.set(depth=1)
        events = {e["name"]: e for e in recorder.events}
        assert set(events) == {"outer", "inner"}
        assert events["outer"]["parent_id"] is None
        assert events["inner"]["parent_id"] == events["outer"]["span_id"]
        assert events["inner"]["trace_id"] == events["outer"]["trace_id"]
        assert events["inner"]["attrs"] == {"depth": 1}
        for event in recorder.events:
            trace.validate_event(event)

    def test_siblings_share_parent_not_ids(self):
        with trace.recording() as recorder:
            with trace.span("root"):
                with trace.span("a"):
                    pass
                with trace.span("b"):
                    pass
        a, b = (e for e in recorder.events if e["name"] in "ab")
        assert a["parent_id"] == b["parent_id"]
        assert a["span_id"] != b["span_id"]

    def test_stage_attaches_to_current_span(self):
        with trace.recording() as recorder:
            with trace.span("work"):
                trace.stage("substep", 0.25, rows=7)
        stage, work = sorted(recorder.events, key=lambda e: e["name"])
        assert stage["parent_id"] == work["span_id"]
        assert stage["duration_s"] == 0.25
        assert stage["attrs"] == {"rows": 7}
        trace.validate_event(stage)

    def test_exception_recorded_and_propagated(self):
        with trace.recording() as recorder:
            with pytest.raises(RuntimeError):
                with trace.span("boom"):
                    raise RuntimeError("no")
        (event,) = recorder.events
        assert event["attrs"]["error"] == "RuntimeError"

    def test_recording_restores_previous_recorder(self):
        outer = trace.install(trace.TraceRecorder())
        with trace.recording():
            assert trace.get_recorder() is not outer
        assert trace.get_recorder() is outer


def _traced_square(x):
    with trace.span("square", x=x):
        return x * x


class TestCrossProcessPropagation:
    def test_worker_spans_parent_onto_map_span(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        with trace.recording(path=sink):
            with trace.span("suite"):
                result = parallel_map(_traced_square, [1, 2, 3], jobs=2)
        assert result == [1, 4, 9]

        events = trace.load_trace(sink)
        for event in events:
            trace.validate_event(event)
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        (suite,) = by_name["suite"]
        (pmap,) = by_name["parallel_map"]
        workers = by_name["parallel_map.worker"]
        squares = by_name["square"]
        assert pmap["parent_id"] == suite["span_id"]
        assert pmap["attrs"] == {"items": 3, "jobs": 2}
        assert len(workers) == 3 and len(squares) == 3
        for worker in workers:
            assert worker["trace_id"] == suite["trace_id"]
            assert worker["parent_id"] == pmap["span_id"]
        worker_ids = {w["span_id"] for w in workers}
        for square in squares:
            assert square["parent_id"] in worker_ids

    def test_untraced_map_unchanged(self):
        assert parallel_map(_traced_square, [4], jobs=1) == [16]

    def test_attached_none_is_identity(self):
        with trace.attached(None):
            assert trace.current_context() is None


class TestDisabledPath:
    def test_span_is_shared_noop(self):
        assert not trace.enabled()
        sp = trace.span("anything", huge=1)
        assert sp is trace.span("other")  # one shared object, no allocs
        with sp as inner:
            inner.set(ignored=True)
        assert trace.get_recorder() is None

    def test_stage_and_add_attrs_do_nothing(self):
        trace.stage("x", 1.0)
        trace.add_attrs(a=1)
        assert trace.current_context() is None

    def test_no_events_recorded_anywhere(self):
        with trace.span("ghost"):
            pass
        with trace.recording() as recorder:
            pass  # recorder only live inside the block
        with trace.span("after"):
            pass
        assert recorder.events == []


class TestEventSchema:
    def _event(self, **overrides):
        event = {
            "name": "n",
            "trace_id": "t1",
            "span_id": "s1",
            "parent_id": None,
            "start_s": 1.0,
            "duration_s": 0.5,
            "pid": 1,
            "attrs": {},
        }
        event.update(overrides)
        return event

    def test_valid_event_passes(self):
        trace.validate_event(self._event())

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": None},
            {"extra_field": 1},
            {"duration_s": -0.1},
            {"pid": 3.5},
            {"pid": True},
            {"attrs": {"k": [1, 2]}},
            {"attrs": {1: "v"}},
        ],
    )
    def test_bad_events_rejected(self, overrides):
        with pytest.raises(ValueError):
            trace.validate_event(self._event(**overrides))

    def test_missing_field_rejected(self):
        event = self._event()
        del event["span_id"]
        with pytest.raises(ValueError):
            trace.validate_event(event)

    def test_load_trace_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(self._event()) + "\n" + '{"name": "tor'
        )
        events = trace.load_trace(path)
        assert len(events) == 1


# ---------------------------------------------------------------------------
# Metrics registry and exporters
# ---------------------------------------------------------------------------
def _golden_registry():
    registry = metrics.MetricsRegistry()
    requests = registry.counter("requests_total", "Requests served")
    depth = registry.gauge("queue_depth", "Items queued")
    latency = registry.histogram(
        "latency_seconds", "Request latency", buckets=(0.1, 1.0)
    )
    requests.inc(3)
    depth.set(2)
    latency.observe(0.05)
    latency.observe(0.5)
    latency.observe(5.0)
    return registry


class TestExporters:
    def test_prometheus_golden(self):
        expected = (
            "# HELP latency_seconds Request latency\n"
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="0.1"} 1\n'
            'latency_seconds_bucket{le="1"} 2\n'
            'latency_seconds_bucket{le="+Inf"} 3\n'
            "latency_seconds_sum 5.55\n"
            "latency_seconds_count 3\n"
            "# HELP queue_depth Items queued\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 2\n"
            "# HELP requests_total Requests served\n"
            "# TYPE requests_total counter\n"
            "requests_total 3\n"
        )
        assert _golden_registry().to_prometheus() == expected

    def test_json_golden(self):
        snap = json.loads(_golden_registry().to_json())
        assert snap == {
            "latency_seconds": {
                "kind": "histogram",
                "help": "Request latency",
                "count": 3,
                "sum": 5.55,
                "buckets": [[0.1, 1], [1.0, 2], ["+Inf", 3]],
            },
            "queue_depth": {
                "kind": "gauge",
                "help": "Items queued",
                "value": 2.0,
            },
            "requests_total": {
                "kind": "counter",
                "help": "Requests served",
                "value": 3.0,
            },
        }

    def test_get_or_create_shares_instruments(self):
        registry = metrics.MetricsRegistry()
        a = registry.counter("c_total")
        b = registry.counter("c_total")
        assert a is b
        with pytest.raises(TypeError):
            registry.gauge("c_total")

    def test_counter_rejects_decrease_and_bad_names(self):
        registry = metrics.MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total").inc(-1)

    def test_reset_zeroes_in_place(self):
        registry = _golden_registry()
        handle = registry.get("requests_total")
        registry.reset()
        assert handle.value == 0
        handle.inc()
        assert registry.get("requests_total").value == 1

    def test_reset_clears_exemplars_and_timeline_rings(self):
        registry = metrics.MetricsRegistry()
        latency = registry.histogram("lat_seconds", "latency")
        latency.observe(0.4, exemplar="trace-abc")
        ring = registry.timeline("fleet", max_samples=8)
        ring.sample()
        ring.sample()
        assert latency.exemplar == (0.4, "trace-abc")
        assert len(ring) == 2

        registry.reset()
        assert latency.exemplar is None
        assert len(ring) == 0 and ring.kinds() == {}
        # the same ring handle stays live after reset
        assert registry.timeline("fleet") is ring
        ring.sample()
        assert len(ring) == 1


class TestExemplars:
    def test_worst_observation_wins(self):
        registry = metrics.MetricsRegistry()
        hist = registry.histogram("h_seconds", "h")
        hist.observe(0.2, exemplar="trace-small")
        hist.observe(0.9, exemplar="trace-big")
        hist.observe(0.5, exemplar="trace-mid")  # smaller: not kept
        assert hist.exemplar == (0.9, "trace-big")

    def test_untagged_observations_keep_existing_exemplar(self):
        registry = metrics.MetricsRegistry()
        hist = registry.histogram("h_seconds", "h")
        hist.observe(0.1, exemplar="trace-first")
        hist.observe(99.0)  # no exemplar attached
        assert hist.exemplar == (0.1, "trace-first")
        assert hist.count == 2


class TestMetricFamilies:
    def test_labels_get_or_create_children(self):
        registry = metrics.MetricsRegistry()
        family = registry.counter(
            "jobs_total", "Jobs", labelnames=("tenant",)
        )
        a = family.labels(tenant="t1")
        b = family.labels("t1")  # positional form hits the same child
        assert a is b
        a.inc(2)
        family.labels(tenant="t2").inc()
        snap = registry.snapshot()
        assert snap['jobs_total{tenant="t1"}']["value"] == 2.0
        assert snap['jobs_total{tenant="t1"}']["labels"] == {"tenant": "t1"}
        assert snap['jobs_total{tenant="t2"}']["value"] == 1.0

    def test_label_kind_mismatch_rejected(self):
        registry = metrics.MetricsRegistry()
        registry.counter("x_total", labelnames=("tenant",))
        with pytest.raises(TypeError):
            registry.counter("x_total")  # unlabeled redeclare
        with pytest.raises(TypeError):
            registry.gauge("x_total", labelnames=("tenant",))

    def test_prometheus_renders_labeled_histogram(self):
        registry = metrics.MetricsRegistry()
        hist = registry.histogram(
            "tick_seconds",
            "Tick time",
            buckets=(0.1, 1.0),
            labelnames=("tenant",),
        )
        hist.labels(tenant="a").observe(0.05)
        hist.labels(tenant="a").observe(0.5)
        text = registry.to_prometheus()
        assert 'tick_seconds_bucket{tenant="a",le="0.1"} 1' in text
        assert 'tick_seconds_bucket{tenant="a",le="+Inf"} 2' in text
        assert 'tick_seconds_count{tenant="a"} 2' in text

    def test_fine_buckets_are_microsecond_scale(self):
        assert metrics.FINE_BUCKETS[0] <= 1e-6
        assert metrics.FINE_BUCKETS == tuple(sorted(metrics.FINE_BUCKETS))
        # sub-100us amortized ticks must land in a real bucket, not +Inf
        assert any(b < 1e-4 for b in metrics.FINE_BUCKETS)
        hist = metrics.MetricsRegistry().histogram(
            "f_seconds", buckets=metrics.FINE_BUCKETS
        )
        hist.observe(5e-5)
        below = [c for b, c in hist.bucket_counts() if b <= 1e-4]
        assert below[-1] == 1


# ---------------------------------------------------------------------------
# Dogfood: registry -> Dataset
# ---------------------------------------------------------------------------
class TestDogfood:
    def _timeline(self):
        registry = metrics.MetricsRegistry()
        ticks = registry.counter("ticks_total")
        depth = registry.gauge("depth")
        lat = registry.histogram("lat_seconds", buckets=(1.0,))
        timeline = dogfood.MetricsTimeline(registry, interval=1.0)
        for i in range(6):
            ticks.inc(10)
            depth.set(i)
            lat.observe(0.5)
            timeline.sample()
        return timeline

    def test_rates_dataset_round_trips_regularize(self):
        timeline = self._timeline()
        dataset = timeline.to_dataset(rates=True)
        regular, report = regularize_dataset(dataset)
        assert report.n_missing == 0
        assert regular.n_rows == dataset.n_rows == 5
        # counters become per-interval deltas, gauges stay levels
        assert list(regular.column("ticks_total")) == [10.0] * 5
        assert list(regular.column("lat_seconds_count")) == [1.0] * 5
        assert list(regular.column("depth")) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_levels_dataset(self):
        dataset = self._timeline().to_dataset(rates=False)
        assert dataset.n_rows == 6
        assert list(dataset.column("ticks_total")) == [
            10.0, 20.0, 30.0, 40.0, 50.0, 60.0,
        ]

    def test_sample_time_must_advance(self):
        timeline = dogfood.MetricsTimeline(metrics.MetricsRegistry())
        timeline.sample(t=5.0)
        with pytest.raises(ValueError):
            timeline.sample(t=5.0)

    def test_rates_need_two_samples(self):
        timeline = dogfood.MetricsTimeline(metrics.MetricsRegistry())
        timeline.sample()
        with pytest.raises(ValueError):
            timeline.to_dataset(rates=True)

    def test_metric_registered_mid_timeline_backfills_zero(self):
        registry = metrics.MetricsRegistry()
        registry.counter("a_total").inc()
        timeline = dogfood.MetricsTimeline(registry)
        timeline.sample()
        timeline.sample()
        registry.counter("late_total").inc(4)
        timeline.sample()
        dataset = timeline.to_dataset(rates=True)
        assert list(dataset.column("late_total")) == [0.0, 4.0]

    def test_flatten_snapshot(self):
        row = dogfood.flatten_snapshot(_golden_registry().snapshot())
        assert row == {
            "requests_total": 3.0,
            "queue_depth": 2.0,
            "latency_seconds_count": 3.0,
            "latency_seconds_sum": 5.55,
        }


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------
class TestReport:
    def test_tree_and_sections(self):
        with trace.recording() as recorder:
            with trace.span("explain"):
                with trace.span("rank", models=3):
                    pass
        text = render_report(
            recorder.events, _golden_registry().snapshot()
        )
        assert "== Slowest trace ==" in text
        assert "== Metrics ==" in text
        assert text.index("explain") < text.index("  rank")
        assert "models=3" in text

    def test_orphan_worker_span_still_rendered(self):
        events = [
            {
                "name": "orphan", "trace_id": "t", "span_id": "s9",
                "parent_id": "not-recorded", "start_s": 0.0,
                "duration_s": 1.0, "pid": 1, "attrs": {},
            }
        ]
        assert "orphan" in span_tree(events)

    def test_empty_trace(self):
        assert "(no spans recorded)" in span_tree([])


# ---------------------------------------------------------------------------
# Satellite: alias store
# ---------------------------------------------------------------------------
class TestAliasStore:
    def test_record_and_lookup(self):
        store = AliasStore()
        assert store.record("cpu_u", "os.cpu_user", 0.9)
        assert store.get("cpu_u") == "os.cpu_user"
        assert "cpu_u" in store and len(store) == 1

    def test_identity_mappings_skipped(self):
        store = AliasStore()
        assert not store.record("same", "same")
        assert len(store) == 0

    def test_weaker_match_never_downgrades(self):
        store = AliasStore()
        store.record("a", "x", 0.9)
        assert not store.record("a", "y", 0.8)  # weaker rename loses
        assert store.get("a") == "x"
        assert store.record("a", "y", 0.95)  # stronger one wins
        assert store.get("a") == "y"

    def test_same_mapping_keeps_best_score(self):
        store = AliasStore()
        store.record("a", "x", 0.9)
        assert not store.record("a", "x", 0.7)
        assert store.scores["a"] == 0.9
        assert store.record("a", "x", 0.99)
        assert store.scores["a"] == 0.99

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "aliases.json"
        store = AliasStore(path)
        store.record("cpu_u", "os.cpu_user", 0.87)
        store.save()
        reloaded = AliasStore(path)
        assert reloaded.aliases == {"cpu_u": "os.cpu_user"}
        assert reloaded.scores == {"cpu_u": 0.87}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "aliases.json"
        path.write_text(json.dumps({"version": 99, "aliases": {}}))
        with pytest.raises(ValueError):
            AliasStore(path)

    def test_in_memory_save_is_noop(self):
        AliasStore().save()  # must not raise

    def test_reconciler_learns_and_reuses_alias(self, tmp_path):
        from repro.schema import SchemaReconciler, fingerprint_attributes

        rng = np.random.default_rng(7)
        n = 60
        ts = np.arange(n, dtype=float)
        values = 50.0 + 10.0 * rng.standard_normal(n)
        train = Dataset(
            ts, numeric={"os.cpu_user": values, "db.lock_waits": ts * 0.1}
        )
        fingerprints = dict(fingerprint_attributes(train, ["os.cpu_user"]))
        drifted = Dataset(
            ts, numeric={"cpu_user_pct": values, "db.lock_waits": ts * 0.1}
        )

        store = AliasStore(tmp_path / "a.json")
        # renamed attr keeps only part of the name, so confirm on the
        # value-sketch-dominated score rather than the strict default
        reconciler = SchemaReconciler(
            alias_store=store, confirm_threshold=0.6
        )
        report = reconciler.reconcile(fingerprints, drifted)
        assert report.matches["os.cpu_user"].method == "fingerprint"
        assert store.get("cpu_user_pct") == "os.cpu_user"
        assert (tmp_path / "a.json").exists()  # persisted on learn

        # a fresh reconciler with the persisted table resolves at the
        # (cheap, score-1.0) alias stage — no fingerprinting needed
        hits_before = metrics.REGISTRY.get(
            "repro_schema_alias_hits_total"
        ).value
        reconciler2 = SchemaReconciler(
            alias_store=AliasStore(tmp_path / "a.json")
        )
        report2 = reconciler2.reconcile(fingerprints, drifted)
        match = report2.matches["os.cpu_user"]
        assert match.method == "alias" and match.score == 1.0
        hits_after = metrics.REGISTRY.get(
            "repro_schema_alias_hits_total"
        ).value
        assert hits_after == hits_before + 1


# ---------------------------------------------------------------------------
# Satellite: supervisor report + cache accounting
# ---------------------------------------------------------------------------
class TestSupervisorReport:
    def test_asdict_round_trip(self):
        from repro.stream.supervisor import SupervisorReport

        report = SupervisorReport(
            ticks_processed=10, restarts=1, backoff_waits=[0.1]
        )
        payload = report.asdict()
        assert payload["ticks_processed"] == 10
        assert payload["restarts"] == 1
        assert payload["backoff_waits"] == [0.1]
        assert "backoff_resets" in payload
        assert json.dumps(payload)  # JSON-serialisable

    def test_run_report_sourced_from_registry(self):
        from repro.stream import StreamingDetector, StreamSupervisor

        rng = np.random.default_rng(3)

        def source_factory(attempt):
            return iter(
                (float(t), {"m": float(50 + rng.standard_normal())}, {})
                for t in range(25)
            )

        ticks_counter = metrics.REGISTRY.get("repro_supervisor_ticks_total")
        before = ticks_counter.value
        supervisor = StreamSupervisor(
            StreamingDetector(capacity=30),
            source_factory,
            checkpoint_every=10,
            sleep=lambda s: None,
        )
        report = supervisor.run()
        assert report.ticks_processed == 25
        assert ticks_counter.value == before + 25
        assert report.checkpoints >= 2


class TestCacheAccounting:
    def _run(self, cache, n=40):
        rng = np.random.default_rng(5)
        ts = np.arange(n, dtype=float)
        dataset = Dataset(
            ts,
            numeric={
                "a": 10.0 + rng.standard_normal(n),
                "b": 5.0 + rng.standard_normal(n),
            },
        )
        from repro.data.regions import Region, RegionSpec

        spec = RegionSpec(
            abnormal=[Region(20.0, 29.0)], normal=[Region(0.0, 19.0)]
        )
        cache.entries(dataset, spec, ["a", "b"], 50)
        return dataset, spec

    def test_clear_resets_stats_and_counts_evictions(self):
        from repro.perf.cache import LabeledSpaceCache

        cache = LabeledSpaceCache()
        dataset, spec = self._run(cache)
        cache.entries(dataset, spec, ["a", "b"], 50)  # warm hit
        stats = cache.stats()
        assert stats["hits"] > 0 and stats["misses"] > 0
        assert stats["resident_bytes"] > 0
        cache.clear()
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["evictions"] == 0  # reset after being counted
        assert stats["entries"] == 0

    def test_eviction_counter_global(self):
        from repro.perf.cache import LabeledSpaceCache

        evictions = metrics.REGISTRY.get("repro_cache_evictions_total")
        before = evictions.value
        cache = LabeledSpaceCache()
        self._run(cache)
        cache.clear()
        assert evictions.value > before  # dropped entries counted globally
