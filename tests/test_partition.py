"""Unit tests for partition spaces and labeling (Sections 4.1-4.2)."""

import numpy as np
import pytest

from repro.core.partition import (
    CategoricalPartitionSpace,
    Label,
    NumericPartitionSpace,
)
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec


class TestNumericPartitionSpace:
    def test_equi_width_bounds(self):
        space = NumericPartitionSpace("a", np.asarray([0.0, 100.0]), 5)
        assert space.lower_bound(0) == 0.0
        assert space.upper_bound(0) == 20.0
        assert space.lower_bound(4) == 80.0
        assert space.upper_bound(4) == 100.0

    def test_width(self):
        space = NumericPartitionSpace("a", np.asarray([0.0, 100.0]), 4)
        assert space.width == 25.0

    def test_max_value_in_last_partition(self):
        space = NumericPartitionSpace("a", np.asarray([0.0, 100.0]), 5)
        assert space.partition_indices(np.asarray([100.0]))[0] == 4

    def test_min_value_in_first_partition(self):
        space = NumericPartitionSpace("a", np.asarray([0.0, 100.0]), 5)
        assert space.partition_indices(np.asarray([0.0]))[0] == 0

    def test_interior_assignment(self):
        space = NumericPartitionSpace("a", np.asarray([0.0, 100.0]), 5)
        idx = space.partition_indices(np.asarray([19.99, 20.0, 39.0]))
        assert list(idx) == [0, 1, 1]

    def test_constant_attribute_single_partition(self):
        space = NumericPartitionSpace("a", np.asarray([7.0, 7.0, 7.0]), 100)
        assert space.n_partitions == 1
        assert space.midpoint(0) == 7.0

    def test_midpoint(self):
        space = NumericPartitionSpace("a", np.asarray([0.0, 100.0]), 5)
        assert space.midpoint(0) == 10.0

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            NumericPartitionSpace("a", np.asarray([]), 5)

    def test_bad_partition_count_rejected(self):
        with pytest.raises(ValueError):
            NumericPartitionSpace("a", np.asarray([1.0]), 0)

    def test_index_out_of_range(self):
        space = NumericPartitionSpace("a", np.asarray([0.0, 1.0]), 5)
        with pytest.raises(IndexError):
            space.lower_bound(5)


class TestNumericLabeling:
    def labeled(self):
        # values 0..9 in ten partitions; rows 0-4 normal, 5-9 abnormal
        values = np.arange(10, dtype=float)
        space = NumericPartitionSpace("a", values, 10)
        abnormal = np.zeros(10, dtype=bool)
        abnormal[5:] = True
        return space.label(values, abnormal, ~abnormal)

    def test_pure_partitions_labeled(self):
        labels = self.labeled()
        assert all(l == int(Label.NORMAL) for l in labels[:5])
        assert all(l == int(Label.ABNORMAL) for l in labels[5:])

    def test_mixed_partition_is_empty(self):
        values = np.asarray([0.0, 0.1, 10.0])  # rows 0,1 share partition 0
        space = NumericPartitionSpace("a", values, 5)
        abnormal = np.asarray([True, False, False])
        labels = space.label(values, abnormal, ~abnormal)
        assert labels[0] == int(Label.EMPTY)

    def test_unpopulated_partition_is_empty(self):
        values = np.asarray([0.0, 10.0])
        space = NumericPartitionSpace("a", values, 10)
        labels = space.label(values, np.asarray([True, False]),
                             np.asarray([False, True]))
        assert all(l == int(Label.EMPTY) for l in labels[1:9])

    def test_ignored_rows_not_counted(self):
        # a row in neither region must not poison a partition's label
        values = np.asarray([0.0, 0.05, 10.0])
        space = NumericPartitionSpace("a", values, 5)
        abnormal = np.asarray([True, False, False])
        normal = np.asarray([False, False, True])  # row 1 ignored
        labels = space.label(values, abnormal, normal)
        assert labels[0] == int(Label.ABNORMAL)

    def test_labeled_from_spec(self):
        values = np.arange(10, dtype=float)
        ds = Dataset(values, numeric={"a": values})
        spec = RegionSpec(abnormal=[Region(5.0, 9.0)])
        space = NumericPartitionSpace.from_dataset(ds, "a", 10)
        labels = space.labeled_from_spec(ds, spec)
        assert labels[9] == int(Label.ABNORMAL)
        assert labels[0] == int(Label.NORMAL)


class TestCategoricalPartitionSpace:
    def test_one_partition_per_category(self):
        values = np.asarray(["a", "b", "a", "c"], dtype=object)
        space = CategoricalPartitionSpace("m", values)
        assert space.n_partitions == 3
        assert space.categories == ["a", "b", "c"]

    def test_unseen_category_maps_to_minus_one(self):
        space = CategoricalPartitionSpace(
            "m", np.asarray(["a"], dtype=object)
        )
        assert space.partition_indices(np.asarray(["zz"], dtype=object))[0] == -1

    def test_majority_labeling(self):
        values = np.asarray(["a", "a", "a", "b", "b"], dtype=object)
        space = CategoricalPartitionSpace("m", values)
        abnormal = np.asarray([True, True, False, False, False])
        labels = space.label(values, abnormal, ~abnormal)
        # 'a': 2 abnormal vs 1 normal -> ABNORMAL; 'b': 0 vs 2 -> NORMAL
        assert labels[0] == int(Label.ABNORMAL)
        assert labels[1] == int(Label.NORMAL)

    def test_tie_is_empty(self):
        values = np.asarray(["a", "a"], dtype=object)
        space = CategoricalPartitionSpace("m", values)
        labels = space.label(
            values, np.asarray([True, False]), np.asarray([False, True])
        )
        assert labels[0] == int(Label.EMPTY)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            CategoricalPartitionSpace("m", np.asarray([], dtype=object))
