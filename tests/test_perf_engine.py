"""Equivalence and behavior tests for the repro.perf subsystem.

The perf layer (shared LabeledSpaceCache, batched numeric labeling,
parallel_map) must be **bitwise-identical** to the serial seed
implementations it replaces — these tests compare every fast path against
the frozen golden copies in ``repro.perf.golden`` with exact ``==``
comparisons, no tolerances.
"""

import os

import numpy as np
import pytest

from repro.core.causal import CausalModel, CausalModelStore, model_confidence
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.core.partition import (
    CategoricalPartitionSpace,
    NumericPartitionSpace,
)
from repro.core.predicates import CategoricalPredicate, NumericPredicate
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec
from repro.eval.harness import build_suite, evaluate_single_models, rank_models
from repro.perf.batch import label_numeric_batch
from repro.perf.cache import LabeledSpaceCache
from repro.core.filtering import abnormal_blocks, fill_gaps, filter_partitions
from repro.perf.golden import (
    golden_abnormal_blocks,
    golden_fill_gaps,
    golden_filter_partitions,
    golden_generate_with_artifacts,
    golden_model_confidence,
    golden_rank,
)
from repro.perf.parallel import parallel_map, resolve_jobs


def _synthetic_dataset(seed: int = 11, n_rows: int = 120) -> Dataset:
    """A small mixed dataset with a step anomaly and awkward attributes."""
    rng = np.random.default_rng(seed)
    timestamps = np.arange(n_rows, dtype=float)
    abnormal = (timestamps >= 40) & (timestamps <= 69)
    step = rng.normal(10.0, 1.0, n_rows)
    step[abnormal] += 35.0
    drop = rng.normal(50.0, 2.0, n_rows)
    drop[abnormal] -= 30.0
    noise = rng.normal(0.0, 1.0, n_rows)
    constant = np.full(n_rows, 3.25)  # the width == 0 edge case
    near_constant = np.where(abnormal, 1.0, 0.0)
    modes = np.where(abnormal, "spike", "steady").astype(object)
    return Dataset(
        timestamps,
        numeric={
            "step": step,
            "drop": drop,
            "noise": noise,
            "constant": constant,
            "near_constant": near_constant,
        },
        categorical={"mode": modes},
    )


SPEC = RegionSpec.from_bounds([(40, 69)])


def _assert_artifacts_equal(ours, golden):
    assert set(ours) == set(golden)
    for attr in ours:
        a, b = ours[attr], golden[attr]
        assert a.is_numeric == b.is_numeric, attr
        assert np.array_equal(a.labels_initial, b.labels_initial), attr
        for name in ("labels_filtered", "labels_filled"):
            left, right = getattr(a, name), getattr(b, name)
            assert (left is None) == (right is None), (attr, name)
            if left is not None:
                assert np.array_equal(left, right), (attr, name)
        # exact float equality, not approx: the batch path must be bitwise
        assert a.normalized_difference == b.normalized_difference, attr
        assert a.predicate == b.predicate, attr
        assert a.rejection == b.rejection, attr
        if a.is_numeric:
            assert a.space.minimum == b.space.minimum, attr
            assert a.space.maximum == b.space.maximum, attr
            assert a.space.width == b.space.width, attr
            assert a.space.n_partitions == b.space.n_partitions, attr
        else:
            assert a.space.categories == b.space.categories, attr


class TestBatchedLabeling:
    def test_batch_matches_serial_per_attribute(self):
        ds = _synthetic_dataset()
        abnormal, normal = SPEC.abnormal_mask(ds), SPEC.normal_mask(ds)
        batched = label_numeric_batch(
            ds, ds.numeric_attributes, abnormal, normal, 250
        )
        for attr in ds.numeric_attributes:
            values = ds.column(attr)
            serial_space = NumericPartitionSpace(attr, values, 250)
            serial_labels = serial_space.label(values, abnormal, normal)
            space, labels = batched[attr]
            assert space.minimum == serial_space.minimum
            assert space.maximum == serial_space.maximum
            assert space.width == serial_space.width
            assert space.n_partitions == serial_space.n_partitions
            assert labels.dtype == serial_labels.dtype
            assert np.array_equal(labels, serial_labels)

    def test_constant_attribute_collapses_to_one_partition(self):
        ds = _synthetic_dataset()
        abnormal, normal = SPEC.abnormal_mask(ds), SPEC.normal_mask(ds)
        batched = label_numeric_batch(ds, ["constant"], abnormal, normal, 250)
        space, labels = batched["constant"]
        assert space.n_partitions == 1
        assert space.width == 0
        assert labels.shape == (1,)

    def test_empty_attribute_list(self):
        ds = _synthetic_dataset()
        abnormal, normal = SPEC.abnormal_mask(ds), SPEC.normal_mask(ds)
        assert label_numeric_batch(ds, [], abnormal, normal, 250) == {}

    def test_midpoints_matches_scalar_loop_bitwise(self):
        for seed in range(6):
            rng = np.random.default_rng(seed)
            values = rng.normal(size=80) * float(rng.uniform(0.01, 5000))
            space = NumericPartitionSpace("x", values, 250)
            scalar = np.asarray(
                [space.midpoint(i) for i in range(space.n_partitions)]
            )
            assert np.array_equal(space.midpoints(), scalar)

    def test_midpoints_width_zero(self):
        space = NumericPartitionSpace("c", np.full(7, 2.5), 250)
        assert space.width == 0
        assert np.array_equal(space.midpoints(), np.asarray([2.5]))

    def test_from_stats_matches_constructor(self):
        values = np.linspace(-3.0, 17.0, 50)
        built = NumericPartitionSpace("x", values, 250)
        stats = NumericPartitionSpace.from_stats("x", -3.0, 17.0, 250)
        assert (built.minimum, built.maximum, built.width, built.n_partitions) == (
            stats.minimum, stats.maximum, stats.width, stats.n_partitions
        )


class TestCategoricalVectorization:
    def test_indices_match_dict_lookup_reference(self):
        rng = np.random.default_rng(5)
        cats = np.asarray(
            [f"c{int(i)}" for i in rng.integers(0, 12, 300)], dtype=object
        )
        space = CategoricalPartitionSpace("m", cats)
        queries = np.asarray(
            list(cats[:50]) + ["unseen", "c999", ""], dtype=object
        )
        reference = {c: i for i, c in enumerate(space.categories)}
        expected = np.asarray(
            [reference.get(str(v), -1) for v in queries], dtype=np.int64
        )
        got = space.partition_indices(queries)
        assert got.dtype == np.int64
        assert np.array_equal(got, expected)

    def test_empty_query(self):
        space = CategoricalPartitionSpace("m", np.asarray(["a"], dtype=object))
        assert space.partition_indices(np.asarray([], dtype=object)).shape == (0,)

    def test_non_string_values_coerced(self):
        space = CategoricalPartitionSpace("m", np.asarray([1, 2, 2], dtype=object))
        got = space.partition_indices(np.asarray([2, 1, 3], dtype=object))
        assert got.tolist() == [space.categories.index("2"),
                                space.categories.index("1"), -1]


class TestGeneratorEquivalence:
    def test_batched_generator_matches_golden(self):
        ds = _synthetic_dataset()
        config = GeneratorConfig(theta=0.05)
        ours = PredicateGenerator(config).generate_with_artifacts(ds, SPEC)
        golden = golden_generate_with_artifacts(ds, SPEC, config)
        _assert_artifacts_equal(ours, golden)

    def test_cached_generator_matches_golden(self):
        ds = _synthetic_dataset()
        config = GeneratorConfig(theta=0.05)
        cache = LabeledSpaceCache()
        generator = PredicateGenerator(config, cache=cache)
        first = generator.generate_with_artifacts(ds, SPEC)
        golden = golden_generate_with_artifacts(ds, SPEC, config)
        _assert_artifacts_equal(first, golden)
        # a second run is served from cache and still identical
        second = generator.generate_with_artifacts(ds, SPEC)
        _assert_artifacts_equal(second, golden)
        assert cache.hits > 0

    def test_ablation_switches_match_golden(self):
        ds = _synthetic_dataset()
        for kwargs in (
            {"enable_filtering": False},
            {"enable_fill": False},
            {"enable_filtering": False, "enable_fill": False},
        ):
            config = GeneratorConfig(theta=0.05, **kwargs)
            ours = PredicateGenerator(config).generate_with_artifacts(ds, SPEC)
            golden = golden_generate_with_artifacts(ds, SPEC, config)
            _assert_artifacts_equal(ours, golden)


class TestConfidenceEquivalence:
    def _model(self):
        ds = _synthetic_dataset()
        conjunction = PredicateGenerator(GeneratorConfig(theta=0.05)).generate(
            ds, SPEC
        )
        predicates = conjunction.predicates + [
            NumericPredicate("missing_attr", lower=1.0)
        ]
        return ds, CausalModel("Synthetic Cause", predicates)

    def test_confidence_matches_golden_bitwise(self):
        ds, model = self._model()
        other = _synthetic_dataset(seed=99)
        cache = LabeledSpaceCache()
        for dataset in (ds, other):
            for apply_filtering in (True, False):
                golden = golden_model_confidence(
                    model.predicates, dataset, SPEC,
                    apply_filtering=apply_filtering,
                )
                serial = model_confidence(
                    model.predicates, dataset, SPEC,
                    apply_filtering=apply_filtering,
                )
                cached = model_confidence(
                    model.predicates, dataset, SPEC,
                    apply_filtering=apply_filtering, cache=cache,
                )
                assert golden == serial == cached

    def test_confidence_on_constant_attribute(self):
        ds = _synthetic_dataset()
        predicate = NumericPredicate("constant", lower=1.0)
        golden = golden_model_confidence([predicate], ds, SPEC)
        assert model_confidence([predicate], ds, SPEC) == golden
        assert (
            model_confidence([predicate], ds, SPEC, cache=LabeledSpaceCache())
            == golden
        )

    def test_confidence_with_categorical_predicate(self):
        ds = _synthetic_dataset()
        predicate = CategoricalPredicate.of("mode", ["spike"])
        golden = golden_model_confidence([predicate], ds, SPEC)
        assert golden == 1.0
        assert model_confidence([predicate], ds, SPEC) == golden
        assert (
            model_confidence([predicate], ds, SPEC, cache=LabeledSpaceCache())
            == golden
        )

    def test_store_rank_matches_golden(self):
        ds, model = self._model()
        decoy = CausalModel("Decoy", [NumericPredicate("noise", lower=100.0)])
        store = CausalModelStore()
        store.add(model)
        store.add(decoy)
        assert store.rank(ds, SPEC) == golden_rank([model, decoy], ds, SPEC)
        shared = LabeledSpaceCache()
        assert store.rank(ds, SPEC, cache=shared) == golden_rank(
            [model, decoy], ds, SPEC
        )
        assert rank_models([model, decoy], ds, SPEC) == golden_rank(
            [model, decoy], ds, SPEC
        )


class TestLabeledSpaceCache:
    def test_hit_and_miss_counters(self):
        ds = _synthetic_dataset()
        cache = LabeledSpaceCache()
        cache.entry(ds, SPEC, "step", 250)
        # masks miss + entry miss
        assert cache.misses == 2 and cache.hits == 0
        cache.entry(ds, SPEC, "step", 250)
        assert cache.hits == 1
        cache.masks(ds, SPEC)
        assert cache.hits == 2

    def test_ranking_k_models_labels_each_attribute_once(self):
        ds = _synthetic_dataset()
        cache = LabeledSpaceCache()
        predicate = NumericPredicate("step", lower=20.0)
        models = [CausalModel(f"cause {i}", [predicate]) for i in range(8)]
        rank_models(models, ds, SPEC, cache=cache)
        labeled_misses = cache.stats()["entries"]
        assert labeled_misses == 1  # one attribute labeled once, not 8x
        assert cache.hits >= 7

    def test_distinct_n_partitions_are_distinct_entries(self):
        ds = _synthetic_dataset()
        cache = LabeledSpaceCache()
        a = cache.entry(ds, SPEC, "step", 250)
        b = cache.entry(ds, SPEC, "step", 50)
        assert a.space.n_partitions == 250
        assert b.space.n_partitions == 50

    def test_structurally_equal_specs_share_entries(self):
        ds = _synthetic_dataset()
        cache = LabeledSpaceCache()
        cache.entry(ds, RegionSpec.from_bounds([(40, 69)]), "step", 250)
        before = cache.misses
        cache.entry(ds, RegionSpec.from_bounds([(40, 69)]), "step", 250)
        assert cache.misses == before and cache.hits >= 1

    def test_invalidate_dataset(self):
        ds = _synthetic_dataset()
        other = _synthetic_dataset(seed=42)
        cache = LabeledSpaceCache()
        cache.entry(ds, SPEC, "step", 250)
        cache.entry(other, SPEC, "step", 250)
        assert cache.stats()["datasets"] == 2
        cache.invalidate(ds)
        assert cache.stats()["datasets"] == 1
        misses = cache.misses
        cache.entry(ds, SPEC, "step", 250)  # re-computed after invalidation
        assert cache.misses > misses
        cache.invalidate()
        assert cache.stats()["entries"] == 0
        assert cache.stats()["mask_entries"] == 0

    def test_garbage_collected_dataset_is_evicted(self):
        import gc

        cache = LabeledSpaceCache()
        ds = _synthetic_dataset()
        cache.entry(ds, SPEC, "step", 250)
        assert cache.stats()["datasets"] == 1
        del ds
        gc.collect()
        assert cache.stats()["datasets"] == 0
        assert cache.stats()["entries"] == 0


def _square(x):  # top-level: must be picklable for the process pool
    return x * x


class TestParallelMap:
    def test_serial_default(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_matches_serial(self):
        items = list(range(23))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_order_preserved(self):
        items = [5, 1, 4, 1, 3]
        assert parallel_map(_square, items, jobs=2) == [25, 1, 16, 1, 9]

    def test_unpicklable_work_falls_back_serially(self):
        assert parallel_map(lambda x: x + 1, [1, 2], jobs=2) == [2, 3]

    def test_resolve_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4
        assert resolve_jobs(2) == 2  # explicit argument wins
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert resolve_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs() == 1

    def test_jobs_env_one_is_operator_veto(self, monkeypatch):
        # REPRO_JOBS=1 means "run inline, never spawn a pool" and beats
        # even an explicit jobs= argument from library callers
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert resolve_jobs() == 1
        assert resolve_jobs(4) == 1
        assert parallel_map(lambda x: x * 2, [1, 2, 3], jobs=4) == [2, 4, 6]


class TestGeneratorConfigReplace:
    def test_replace_overrides_and_preserves(self):
        config = GeneratorConfig(n_partitions=100, delta=5.0)
        replaced = config.replace(theta=0.5)
        assert replaced.theta == 0.5
        assert replaced.n_partitions == 100
        assert replaced.delta == 5.0
        assert replaced.enable_filtering is config.enable_filtering

    def test_replace_rejects_unknown_field(self):
        # the hand-rolled dict silently ignored typos; dataclasses.replace
        # raises, and will carry any future config field automatically
        with pytest.raises(TypeError):
            GeneratorConfig().replace(no_such_field=1)


class TestHarnessParallelEquivalence:
    """Parallel suite simulation is bit-identical to the serial path."""

    KWARGS = dict(
        durations=[20, 30],
        anomaly_keys=["cpu_saturation", "network_congestion"],
        seed=321,
        normal_s=40,
    )

    def test_build_suite_parallel_identical(self):
        serial = build_suite(jobs=1, **self.KWARGS)
        parallel = build_suite(jobs=2, **self.KWARGS)
        assert list(serial) == list(parallel)
        for cause in serial:
            for a, b in zip(serial[cause], parallel[cause]):
                assert a.cause == b.cause and a.seed == b.seed
                assert np.array_equal(a.dataset.timestamps, b.dataset.timestamps)
                assert a.dataset.attributes == b.dataset.attributes
                for attr in a.dataset.numeric_attributes:
                    assert np.array_equal(
                        a.dataset.column(attr), b.dataset.column(attr)
                    ), attr
                assert [(r.start, r.end) for r in a.spec.abnormal] == [
                    (r.start, r.end) for r in b.spec.abnormal
                ]

    def test_evaluate_single_models_parallel_identical(self):
        suite = build_suite(jobs=1, **self.KWARGS)
        serial = evaluate_single_models(suite, jobs=1)
        parallel = evaluate_single_models(suite, jobs=2)
        assert [
            (r.cause, r.mean_margin, r.mean_f1, r.top1_accuracy)
            for r in serial
        ] == [
            (r.cause, r.mean_margin, r.mean_f1, r.top1_accuracy)
            for r in parallel
        ]


class TestVectorizedFiltering:
    """Scan-based filtering/gap-filling match the seed Python loops exactly."""

    @staticmethod
    def _random_labels(rng, n):
        # Weight Empty heavily so left/right scans hit long gaps.
        return rng.choice([0, 1, 2], size=n, p=[0.5, 0.25, 0.25]).astype(np.int64)

    def test_filter_partitions_matches_golden(self):
        rng = np.random.default_rng(42)
        for n in (1, 2, 3, 7, 50, 250):
            for _ in range(20):
                labels = self._random_labels(rng, n)
                assert np.array_equal(
                    filter_partitions(labels), golden_filter_partitions(labels)
                ), labels

    def test_fill_gaps_matches_golden(self):
        rng = np.random.default_rng(43)
        for n in (1, 2, 3, 7, 50, 250):
            for delta in (1.0, 5.0, 10.0):
                for _ in range(10):
                    labels = self._random_labels(rng, n)
                    normal_mean = int(rng.integers(0, n))
                    assert np.array_equal(
                        fill_gaps(labels, delta, normal_mean),
                        golden_fill_gaps(labels, delta, normal_mean),
                    ), (labels, delta)

    def test_abnormal_blocks_matches_golden(self):
        rng = np.random.default_rng(44)
        for n in (1, 2, 5, 250):
            for _ in range(20):
                labels = self._random_labels(rng, n)
                assert abnormal_blocks(labels) == golden_abnormal_blocks(labels)

    def test_lone_label_kept(self):
        labels = np.asarray([1, 2, 1, 1], dtype=np.int64)
        assert np.array_equal(
            filter_partitions(labels), golden_filter_partitions(labels)
        )


# ----------------------------------------------------------------------
# Row-batched kernels: stacked passes vs the serial seed functions
# ----------------------------------------------------------------------
class TestBatchKernelsBitwise:
    """The explain_batch/fleet kernels match their serial counterparts.

    Every kernel here feeds the fused diagnosis path
    (``DBSherlock.explain_batch``) or the fleet storm path
    (``cluster_windows_batch``); each row/lane of a batched result must be
    bitwise-identical to the serial function on that row alone.
    """

    @staticmethod
    def _random_labels(rng, m, n):
        return rng.choice([0, 1, 2], size=(m, n), p=[0.5, 0.25, 0.25]).astype(
            np.int64
        )

    def test_filter_partitions_batch_rows_match_serial(self):
        from repro.perf.batch import filter_partitions_batch

        rng = np.random.default_rng(91)
        for n in (1, 2, 3, 7, 50, 250):
            rows = self._random_labels(rng, 24, n)
            batched = filter_partitions_batch(rows)
            for i in range(rows.shape[0]):
                assert np.array_equal(
                    batched[i], filter_partitions(rows[i])
                ), (n, i)

    def test_fill_gaps_batch_rows_match_serial(self):
        from repro.core.partition import Label
        from repro.perf.batch import fill_gaps_batch

        rng = np.random.default_rng(92)
        for n in (2, 3, 7, 50, 250):
            rows = self._random_labels(rng, 40, n)
            # abnormal-only rows need a normal_mean_partition: serial-only
            has_abnormal = (rows == int(Label.ABNORMAL)).any(axis=1)
            has_normal = (rows == int(Label.NORMAL)).any(axis=1)
            rows = rows[has_normal | ~has_abnormal]
            for delta in (0.5, 1.0, 10.0):
                batched = fill_gaps_batch(rows, delta)
                for i in range(rows.shape[0]):
                    assert np.array_equal(
                        batched[i], fill_gaps(rows[i], delta)
                    ), (n, i, delta)

    def test_fill_gaps_batch_rejects_abnormal_only_rows(self):
        from repro.core.partition import Label
        from repro.perf.batch import fill_gaps_batch

        row = np.full(6, int(Label.EMPTY), dtype=np.int64)
        row[2] = int(Label.ABNORMAL)
        with pytest.raises(ValueError):
            fill_gaps_batch(row[None, :], 1.0)

    def test_abnormal_blocks_batch_rows_match_serial(self):
        from repro.perf.batch import abnormal_blocks_batch

        rng = np.random.default_rng(93)
        for n in (1, 2, 5, 50, 250):
            rows = self._random_labels(rng, 24, n)
            batched = abnormal_blocks_batch(rows)
            for i in range(rows.shape[0]):
                assert batched[i] == abnormal_blocks(rows[i]), (n, i)

    def test_normalize_columns_batch_rows_match_serial(self):
        from repro.core.separation import normalize_values
        from repro.perf.batch import normalize_columns_batch

        rng = np.random.default_rng(94)
        matrix = rng.normal(size=(6, 80)) * rng.uniform(0.1, 100.0, (6, 1))
        matrix[3] = 7.5  # constant row: span == 0 edge case
        batched = normalize_columns_batch(matrix)
        for i in range(matrix.shape[0]):
            assert np.array_equal(batched[i], normalize_values(matrix[i])), i

    def test_dbscan_labels_batch_matches_serial(self):
        from repro.cluster.dbscan import DBSCAN, dbscan_labels_batch

        rng = np.random.default_rng(95)
        for n, d in ((6, 1), (20, 2), (40, 3)):
            pts = rng.normal(size=(12, n, d))
            pts[::2, : n // 2] += 8.0  # force real clusters in half the sets
            pts[1] = pts[1, :1]  # degenerate: all points identical
            labels, eps = dbscan_labels_batch(pts, min_pts=3)
            for i in range(pts.shape[0]):
                model = DBSCAN(eps=None, min_pts=3).fit(pts[i])
                assert np.array_equal(labels[i], model.labels_), (n, d, i)
                assert eps[i] == model.eps_, (n, d, i)


# ----------------------------------------------------------------------
# Sharded cache: concurrency, GC-pressure eviction, publication races
# ----------------------------------------------------------------------
class TestShardedCacheConcurrency:
    def test_rejects_bad_shard_count_and_reports_shards(self):
        with pytest.raises(ValueError):
            LabeledSpaceCache(n_shards=0)
        assert LabeledSpaceCache(n_shards=1).stats()["shards"] == 1
        assert LabeledSpaceCache().stats()["shards"] >= 1

    def test_concurrent_readers_share_one_published_entry(self):
        import threading

        cache = LabeledSpaceCache()
        datasets = [_synthetic_dataset(seed=s) for s in range(4)]
        n_threads = 8
        results = [[] for _ in range(n_threads)]
        errors = []
        barrier = threading.Barrier(n_threads)

        def worker(k):
            try:
                barrier.wait()
                for ds in datasets:
                    for attr in ("step", "drop", "noise"):
                        results[k].append(cache.entry(ds, SPEC, attr, 250))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(k,))
            for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # first writer wins: every thread got the *same* entry object
        for k in range(1, n_threads):
            assert all(
                a is b for a, b in zip(results[0], results[k])
            ), k
        stats = cache.stats()
        assert stats["entries"] == len(datasets) * 3
        assert stats["datasets"] == len(datasets)

    def test_gc_pressure_does_not_race_eviction(self):
        """The historical failure: a dataset's weakref callback mutating the
        tables mid-iteration (``RuntimeError: dictionary changed size during
        iteration``).  Eviction is now deferred to cache entry points, so
        hammering ``stats()``/``resident_bytes()``/lookups while datasets are
        created and collected must never raise."""
        import gc
        import threading

        cache = LabeledSpaceCache()
        errors = []
        stop = threading.Event()

        def hammer():
            keep = _synthetic_dataset(seed=999)
            try:
                while not stop.is_set():
                    cache.stats()
                    cache.resident_bytes()
                    cache.entry(keep, SPEC, "step", 50)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for i in range(120):
                ds = _synthetic_dataset(seed=i % 9, n_rows=96)
                cache.entry(ds, SPEC, "step", 50)
                cache.masks(ds, SPEC)
                del ds
                if i % 7 == 0:
                    gc.collect()
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors
        gc.collect()
        stats = cache.stats()  # entry point: drains pending evictions
        assert stats["datasets"] <= 4 + 1  # the threads' keep-alives at most
        assert stats["evictions"] > 0

    def test_seeded_normalized_means_match_computed(self):
        from repro.core.separation import normalize_values, region_means

        ds = _synthetic_dataset()
        fresh = LabeledSpaceCache()
        want = fresh.normalized_means(ds, SPEC, "step")
        seeded = LabeledSpaceCache()
        abnormal, normal = SPEC.abnormal_mask(ds), SPEC.normal_mask(ds)
        means = region_means(
            normalize_values(ds.column("step")), abnormal, normal
        )
        seeded.seed_normalized_means(ds, SPEC, "step", means)
        hits = seeded.hits
        assert seeded.normalized_means(ds, SPEC, "step") == want
        assert seeded.hits == hits + 1  # served from the seeded entry


# ----------------------------------------------------------------------
# Fused explain_batch: identical Explanations, warmed from batch kernels
# ----------------------------------------------------------------------
class TestExplainBatchEquivalence:
    def _jobs(self, k=6):
        return [(_synthetic_dataset(seed=100 + i), SPEC) for i in range(k)]

    def _seeded_sherlock(self):
        from repro.core.explain import DBSherlock

        sherlock = DBSherlock()
        teach = _synthetic_dataset(seed=3)
        explanation = sherlock.explain(teach, SPEC)
        sherlock.feedback("step storm", explanation, teach)
        return sherlock

    @staticmethod
    def _assert_explanations_equal(got, want):
        assert len(got) == len(want)
        for a, b in zip(got, want):
            assert a.predicates.predicates == b.predicates.predicates
            assert a.pruned == b.pruned
            assert a.causes == b.causes
            assert a.all_cause_scores == b.all_cause_scores
            assert a.abstained == b.abstained

    def test_explain_batch_identical_to_serial(self):
        jobs = self._jobs()
        want = [
            self._seeded_sherlock().explain(ds, spec) for ds, spec in jobs
        ]
        got = self._seeded_sherlock().explain_batch(jobs)
        self._assert_explanations_equal(got, want)

    def test_degraded_jobs_fall_back_to_serial_inside_batch(self):
        # a NaN-ridden dataset cannot be seeded by the NaN-free kernels;
        # it must silently take the serial path and still match exactly
        rng = np.random.default_rng(5)
        ts = np.arange(120, dtype=float)
        abnormal = (ts >= 40) & (ts <= 69)
        step = rng.normal(10.0, 1.0, 120)
        step[abnormal] += 30.0
        noisy = rng.normal(size=120)
        noisy[::9] = np.nan
        nan_ds = Dataset(ts, numeric={"step": step, "noisy": noisy})
        jobs = self._jobs(3) + [(nan_ds, SPEC)]
        want = [
            self._seeded_sherlock().explain(ds, spec) for ds, spec in jobs
        ]
        got = self._seeded_sherlock().explain_batch(jobs)
        self._assert_explanations_equal(got, want)

    def test_single_job_batch_is_plain_explain(self):
        jobs = self._jobs(1)
        want = self._seeded_sherlock().explain(*jobs[0])
        got = self._seeded_sherlock().explain_batch(jobs)
        self._assert_explanations_equal(got, [want])
