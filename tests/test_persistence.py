"""Unit tests for causal-model persistence."""

import json

import pytest

from repro.core.causal import CausalModel, CausalModelStore
from repro.core.persistence import (
    load_store,
    model_from_dict,
    model_to_dict,
    predicate_from_dict,
    predicate_to_dict,
    save_store,
)
from repro.core.predicates import CategoricalPredicate, NumericPredicate


def sample_store():
    store = CausalModelStore()
    store.add(
        CausalModel(
            "CPU Saturation",
            [
                NumericPredicate("os.cpu_usage", lower=85.0),
                NumericPredicate("os.cpu_idle", upper=10.0),
                NumericPredicate("txn.avg_latency_ms", lower=5.0, upper=50.0),
                CategoricalPredicate.of("workload.dominant_txn", ["NewOrder"]),
            ],
        )
    )
    store.add(CausalModel("Network Congestion", [], n_merged=3))
    return store


class TestPredicateRoundTrip:
    @pytest.mark.parametrize(
        "predicate",
        [
            NumericPredicate("a", lower=1.0),
            NumericPredicate("a", upper=2.0),
            NumericPredicate("a", lower=1.0, upper=2.0),
            CategoricalPredicate.of("c", ["x", "y"]),
        ],
    )
    def test_round_trip(self, predicate):
        assert predicate_from_dict(predicate_to_dict(predicate)) == predicate

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            predicate_from_dict({"kind": "quantum"})


class TestModelRoundTrip:
    def test_round_trip_preserves_fields(self):
        model = CausalModel(
            "X", [NumericPredicate("a", lower=1.0)], n_merged=4
        )
        restored = model_from_dict(model_to_dict(model))
        assert restored.cause == "X"
        assert restored.n_merged == 4
        assert restored.predicates == model.predicates

    def test_missing_n_merged_defaults(self):
        restored = model_from_dict({"cause": "X", "predicates": []})
        assert restored.n_merged == 1


class TestStorePersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "models.json"
        save_store(sample_store(), path)
        restored = load_store(path)
        assert set(restored.causes) == {"CPU Saturation", "Network Congestion"}
        model = restored.get("CPU Saturation")
        assert len(model.predicates) == 4

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "models.json"
        save_store(sample_store(), path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == 2
        assert len(payload["models"]) == 2

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "models.json"
        save_store(sample_store(), path)
        assert path.exists()

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "models.json"
        path.write_text(json.dumps({"schema": 99, "models": []}))
        with pytest.raises(ValueError):
            load_store(path)

    def test_n_merged_survives(self, tmp_path):
        path = tmp_path / "models.json"
        save_store(sample_store(), path)
        assert load_store(path).get("Network Congestion").n_merged == 3

    def test_restored_models_still_rank(self, tmp_path):
        import numpy as np
        from repro.data.dataset import Dataset
        from repro.data.regions import Region, RegionSpec

        path = tmp_path / "models.json"
        save_store(sample_store(), path)
        restored = load_store(path)
        values = np.asarray([10.0] * 60 + [95.0] * 30 + [10.0] * 30)
        ds = Dataset(np.arange(120.0), numeric={"os.cpu_usage": values})
        spec = RegionSpec(abnormal=[Region(60.0, 89.0)])
        ranked = restored.rank(ds, spec)
        assert ranked[0][0] == "CPU Saturation"
