"""Unit tests for predicate types and merging (Sections 3, 6.2)."""

import numpy as np
import pytest

from repro.core.predicates import (
    CategoricalPredicate,
    Conjunction,
    InconsistentPredicates,
    NumericPredicate,
)
from repro.data.dataset import Dataset


class TestNumericPredicate:
    def test_gt_direction(self):
        assert NumericPredicate("a", lower=5.0).direction == "gt"

    def test_lt_direction(self):
        assert NumericPredicate("a", upper=5.0).direction == "lt"

    def test_range_direction(self):
        assert NumericPredicate("a", lower=1.0, upper=5.0).direction == "range"

    def test_no_bounds_rejected(self):
        with pytest.raises(ValueError):
            NumericPredicate("a")

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            NumericPredicate("a", lower=5.0, upper=5.0)

    def test_evaluate_gt_strict(self):
        pred = NumericPredicate("a", lower=5.0)
        mask = pred.evaluate_values(np.asarray([4.0, 5.0, 6.0]))
        assert list(mask) == [False, False, True]

    def test_evaluate_lt_strict(self):
        pred = NumericPredicate("a", upper=5.0)
        mask = pred.evaluate_values(np.asarray([4.0, 5.0, 6.0]))
        assert list(mask) == [True, False, False]

    def test_evaluate_range_open(self):
        pred = NumericPredicate("a", lower=1.0, upper=3.0)
        mask = pred.evaluate_values(np.asarray([1.0, 2.0, 3.0]))
        assert list(mask) == [False, True, False]

    def test_evaluate_on_dataset(self):
        ds = Dataset([0.0, 1.0], numeric={"a": [1.0, 10.0]})
        assert list(NumericPredicate("a", lower=5.0).evaluate(ds)) == [False, True]

    def test_str_forms(self):
        assert str(NumericPredicate("a", lower=5.0)) == "a > 5"
        assert str(NumericPredicate("a", upper=5.0)) == "a < 5"
        assert str(NumericPredicate("a", lower=1.0, upper=2.0)) == "1 < a < 2"


class TestNumericMerge:
    def test_gt_takes_smaller_bound(self):
        # the paper's example: A > 10 merged with A > 15 gives A > 10
        merged = NumericPredicate("a", lower=10.0).merge(
            NumericPredicate("a", lower=15.0)
        )
        assert merged.lower == 10.0 and merged.upper is None

    def test_lt_takes_larger_bound(self):
        merged = NumericPredicate("a", upper=15.0).merge(
            NumericPredicate("a", upper=10.0)
        )
        assert merged.upper == 15.0

    def test_range_hull(self):
        merged = NumericPredicate("a", lower=2.0, upper=5.0).merge(
            NumericPredicate("a", lower=1.0, upper=4.0)
        )
        assert (merged.lower, merged.upper) == (1.0, 5.0)

    def test_conflicting_directions_raise(self):
        with pytest.raises(InconsistentPredicates):
            NumericPredicate("a", lower=10.0).merge(
                NumericPredicate("a", upper=30.0)
            )

    def test_gt_vs_range_inconsistent(self):
        with pytest.raises(InconsistentPredicates):
            NumericPredicate("a", lower=10.0).merge(
                NumericPredicate("a", lower=1.0, upper=5.0)
            )

    def test_merge_other_attribute_rejected(self):
        with pytest.raises(ValueError):
            NumericPredicate("a", lower=1.0).merge(
                NumericPredicate("b", lower=1.0)
            )

    def test_merge_commutative(self):
        p, q = NumericPredicate("a", lower=10.0), NumericPredicate("a", lower=15.0)
        assert p.merge(q) == q.merge(p)


class TestCategoricalPredicate:
    def test_evaluate(self):
        pred = CategoricalPredicate.of("c", ["x", "z"])
        mask = pred.evaluate_values(np.asarray(["x", "y", "z"], dtype=object))
        assert list(mask) == [True, False, True]

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError):
            CategoricalPredicate.of("c", [])

    def test_merge_is_union(self):
        # Section 6.2 rule: the merge includes the categories of both
        merged = CategoricalPredicate.of("c", ["xx", "yy", "zz"]).merge(
            CategoricalPredicate.of("c", ["xx", "zz"])
        )
        assert merged.categories == frozenset({"xx", "yy", "zz"})

    def test_merge_other_attribute_rejected(self):
        with pytest.raises(ValueError):
            CategoricalPredicate.of("c", ["x"]).merge(
                CategoricalPredicate.of("d", ["x"])
            )

    def test_str_sorted(self):
        assert str(CategoricalPredicate.of("c", ["b", "a"])) == "c ∈ {a, b}"


class TestConjunction:
    def ds(self):
        return Dataset(
            [0.0, 1.0, 2.0],
            numeric={"a": [1.0, 10.0, 10.0]},
            categorical={"c": ["x", "x", "y"]},
        )

    def test_evaluate_all_predicates(self):
        conj = Conjunction(
            [NumericPredicate("a", lower=5.0), CategoricalPredicate.of("c", ["x"])]
        )
        assert list(conj.evaluate(self.ds())) == [False, True, False]

    def test_empty_conjunction_all_true(self):
        assert Conjunction().evaluate(self.ds()).all()

    def test_empty_conjunction_falsy(self):
        assert not Conjunction()

    def test_missing_attribute_matches_nothing(self):
        conj = Conjunction([NumericPredicate("zzz", lower=0.0)])
        assert not conj.evaluate(self.ds()).any()

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError):
            Conjunction(
                [NumericPredicate("a", lower=1.0), NumericPredicate("a", upper=9.0)]
            )

    def test_attributes_and_len(self):
        conj = Conjunction([NumericPredicate("a", lower=1.0)])
        assert conj.attributes == ["a"] and len(conj) == 1

    def test_str_joins(self):
        conj = Conjunction(
            [NumericPredicate("a", lower=1.0), NumericPredicate("b", upper=2.0)]
        )
        assert "∧" in str(conj)
