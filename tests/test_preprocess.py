"""Unit tests for log preprocessing: aggregation and alignment (Section 2.1)."""

import numpy as np
import pytest

from repro.data.preprocess import (
    AlignedLogBuilder,
    TransactionRecord,
    aggregate_transactions,
    align_logs,
)


def records():
    return [
        TransactionRecord(0.2, 10.0, "A"),
        TransactionRecord(0.7, 20.0, "B"),
        TransactionRecord(1.5, 30.0, "A"),
        TransactionRecord(3.1, 40.0, "A"),
    ]


class TestAggregateTransactions:
    def test_interval_counts(self):
        ts, cols = aggregate_transactions(records(), 0.0, 4.0)
        assert list(cols["txn_count_total"]) == [2, 1, 0, 1]

    def test_per_type_counts(self):
        ts, cols = aggregate_transactions(records(), 0.0, 4.0)
        assert list(cols["txn_count_A"]) == [1, 1, 0, 1]
        assert list(cols["txn_count_B"]) == [1, 0, 0, 0]

    def test_average_latency(self):
        ts, cols = aggregate_transactions(records(), 0.0, 4.0)
        assert cols["txn_avg_latency_ms"][0] == pytest.approx(15.0)

    def test_gap_carries_previous_latency(self):
        ts, cols = aggregate_transactions(records(), 0.0, 4.0)
        # interval 2 has no transactions: it repeats interval 1's latency
        assert cols["txn_avg_latency_ms"][2] == cols["txn_avg_latency_ms"][1]

    def test_leading_gap_is_zero(self):
        ts, cols = aggregate_transactions(
            [TransactionRecord(2.5, 10.0)], 0.0, 4.0
        )
        assert cols["txn_avg_latency_ms"][0] == 0.0

    def test_quantile_columns(self):
        ts, cols = aggregate_transactions(records(), 0.0, 4.0, quantiles=(0.5,))
        assert "txn_p50_latency_ms" in cols

    def test_out_of_range_records_ignored(self):
        ts, cols = aggregate_transactions(
            [TransactionRecord(99.0, 1.0)], 0.0, 4.0
        )
        assert cols["txn_count_total"].sum() == 0

    def test_explicit_type_list(self):
        ts, cols = aggregate_transactions(
            records(), 0.0, 4.0, txn_types=["A", "C"]
        )
        assert "txn_count_C" in cols and "txn_count_B" not in cols

    def test_timestamps_grid(self):
        ts, _ = aggregate_transactions(records(), 0.0, 4.0)
        assert list(ts) == [0.0, 1.0, 2.0, 3.0]

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            aggregate_transactions(records(), 0.0, 4.0, interval=0.0)


class TestAlignLogs:
    def test_takes_sample_within_interval(self):
        target = np.asarray([0.0, 1.0, 2.0])
        aligned = align_logs(
            target,
            {"os": (np.asarray([0.4, 1.4, 2.4]), {"cpu": np.asarray([1.0, 2.0, 3.0])})},
        )
        assert list(aligned["os.cpu"]) == [1.0, 2.0, 3.0]

    def test_leading_gap_takes_first_sample(self):
        target = np.asarray([0.0, 1.0])
        aligned = align_logs(
            target, {"s": (np.asarray([5.0]), {"v": np.asarray([42.0])})}
        )
        assert list(aligned["s.v"]) == [42.0, 42.0]

    def test_unsorted_source_sorted(self):
        target = np.asarray([0.0, 1.0])
        aligned = align_logs(
            target,
            {"s": (np.asarray([1.2, 0.2]), {"v": np.asarray([20.0, 10.0])})},
        )
        assert list(aligned["s.v"]) == [10.0, 20.0]

    def test_prefixes_source_name(self):
        aligned = align_logs(
            np.asarray([0.0]), {"db": (np.asarray([0.0]), {"x": np.asarray([1.0])})}
        )
        assert "db.x" in aligned

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError):
            align_logs(np.asarray([0.0]), {"s": (np.asarray([]), {"v": np.asarray([])})})


class TestAlignedLogBuilder:
    def test_build_combines_sources(self):
        builder = AlignedLogBuilder(0.0, 5.0)
        builder.add_transactions([TransactionRecord(1.0, 5.0, "A")],
                                 txn_types=["A"])
        builder.add_sampled("os", [0.5, 2.5, 4.5], {"cpu": [1.0, 2.0, 3.0]})
        builder.add_constant_categorical("ver", "5.6")
        ds = builder.build(name="demo")
        assert ds.n_rows == 5
        assert "os.cpu" in ds.numeric_attributes
        assert "txn_count_A" in ds.numeric_attributes
        assert set(ds.column("ver")) == {"5.6"}

    def test_categorical_length_checked(self):
        builder = AlignedLogBuilder(0.0, 3.0)
        with pytest.raises(ValueError):
            builder.add_categorical("m", ["a", "b"])

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            AlignedLogBuilder(5.0, 5.0)

    def test_per_interval_categorical(self):
        builder = AlignedLogBuilder(0.0, 2.0)
        builder.add_categorical("m", ["a", "b"])
        ds = builder.build()
        assert list(ds.column("m")) == ["a", "b"]
