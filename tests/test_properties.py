"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.filtering import abnormal_blocks, fill_gaps, filter_partitions
from repro.core.partition import Label, NumericPartitionSpace
from repro.core.predicates import NumericPredicate
from repro.core.separation import normalize_values, separation_power
from repro.cluster.dbscan import DBSCAN, NOISE, k_distances
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec

E, N, A = int(Label.EMPTY), int(Label.NORMAL), int(Label.ABNORMAL)

labels_arrays = st.lists(
    st.sampled_from([E, N, A]), min_size=1, max_size=40
).map(lambda xs: np.asarray(xs, dtype=np.int64))

float_arrays = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=200
).map(lambda xs: np.asarray(xs, dtype=np.float64))


class TestNormalizationProperties:
    @given(float_arrays)
    def test_output_in_unit_interval(self, values):
        out = normalize_values(values)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @given(float_arrays)
    def test_order_preserved(self, values):
        # monotone non-decreasing along the sorted input (ties may merge
        # nearby values after the division, so strict order is too strong)
        out = normalize_values(values)
        ordered = out[np.argsort(values, kind="stable")]
        assert np.all(np.diff(ordered) >= -1e-12)

    @given(float_arrays, st.floats(0.1, 100), st.floats(-100, 100))
    def test_affine_invariance(self, values, scale, shift):
        if float(values.max() - values.min()) < 1e-9:
            return  # (near-)constant vectors may collapse under scaling
        a = normalize_values(values)
        b = normalize_values(values * scale + shift)
        assert np.allclose(a, b, atol=1e-6)


class TestPartitionProperties:
    @given(float_arrays, st.integers(1, 50))
    def test_every_value_assigned_once(self, values, n_partitions):
        space = NumericPartitionSpace("a", values, n_partitions)
        idx = space.partition_indices(values)
        assert np.all(idx >= 0) and np.all(idx < space.n_partitions)

    @given(float_arrays, st.integers(1, 50))
    def test_bounds_contain_assigned_values(self, values, n_partitions):
        space = NumericPartitionSpace("a", values, n_partitions)
        idx = space.partition_indices(values)
        # width-scaled tolerance: values an ulp below a boundary may be
        # absorbed into the upper partition by floating-point rounding
        eps = 1e-9 * max(space.width, 1.0)
        for value, i in zip(values, idx):
            assert space.lower_bound(int(i)) - eps <= value
            assert value <= space.upper_bound(int(i)) + eps


class TestFilteringProperties:
    @given(labels_arrays)
    def test_filtering_never_adds_labels(self, labels):
        out = filter_partitions(labels)
        changed = out != labels
        assert np.all(out[changed] == E)

    @given(labels_arrays)
    def test_filtering_idempotent_on_uniform(self, labels):
        uniform = np.full_like(labels, A)
        assert np.array_equal(filter_partitions(uniform), uniform)

    @given(labels_arrays, st.floats(0.1, 20.0))
    def test_fill_gaps_total_when_both_present(self, labels, delta):
        has_a = (labels == A).any()
        has_n = (labels == N).any()
        if not (has_a and has_n):
            return
        out = fill_gaps(labels, delta)
        assert not (out == E).any()

    @given(labels_arrays, st.floats(0.1, 20.0))
    def test_fill_gaps_preserves_non_empty(self, labels, delta):
        if not ((labels == A).any() and (labels == N).any()):
            return
        out = fill_gaps(labels, delta)
        non_empty = labels != E
        assert np.array_equal(out[non_empty], labels[non_empty])

    @given(labels_arrays)
    def test_abnormal_blocks_cover_all_abnormal(self, labels):
        blocks = abnormal_blocks(labels)
        covered = np.zeros(labels.shape, dtype=bool)
        for start, end in blocks:
            covered[start : end + 1] = True
        assert np.array_equal(covered, labels == A)


class TestSeparationProperties:
    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=20, max_size=60),
        st.floats(-10, 110),
    )
    def test_separation_power_bounded(self, values, bound):
        n = len(values)
        ds = Dataset(
            np.arange(n, dtype=float), numeric={"a": np.asarray(values)}
        )
        spec = RegionSpec(abnormal=[Region(0.0, float(n // 2))])
        power = separation_power(NumericPredicate("a", lower=bound), ds, spec)
        assert -1.0 <= power <= 1.0


class TestPredicateMergeProperties:
    bounds = st.floats(-1e6, 1e6, allow_nan=False)

    @given(bounds, bounds)
    def test_gt_merge_covers_both(self, b1, b2):
        p = NumericPredicate("a", lower=b1)
        q = NumericPredicate("a", lower=b2)
        merged = p.merge(q)
        probe = np.asarray([b1 + 1.0, b2 + 1.0])
        assert merged.evaluate_values(probe).all()

    @given(bounds, bounds, st.floats(-1e6, 1e6, allow_nan=False))
    def test_merge_is_superset(self, b1, b2, probe):
        p = NumericPredicate("a", lower=b1)
        q = NumericPredicate("a", lower=b2)
        merged = p.merge(q)
        values = np.asarray([probe])
        either = p.evaluate_values(values) | q.evaluate_values(values)
        assert not either.any() or merged.evaluate_values(values).all()


class TestDbscanProperties:
    points = st.lists(
        st.tuples(st.floats(-100, 100, allow_nan=False),
                  st.floats(-100, 100, allow_nan=False)),
        min_size=1,
        max_size=60,
    ).map(np.asarray)

    @settings(deadline=None)
    @given(points, st.floats(0.1, 50.0), st.integers(1, 6))
    def test_labels_complete(self, pts, eps, min_pts):
        labels = DBSCAN(eps=eps, min_pts=min_pts).fit_predict(pts)
        assert labels.shape[0] == pts.shape[0]
        assert all(l == NOISE or l >= 0 for l in labels)

    @settings(deadline=None)
    @given(points, st.integers(1, 5))
    def test_k_distances_non_negative(self, pts, k):
        kd = k_distances(pts, k)
        assert np.all(kd >= 0.0)

    @settings(deadline=None)
    @given(points, st.floats(0.1, 50.0))
    def test_cluster_members_at_least_min_pts_or_border(self, pts, eps):
        min_pts = 3
        clusterer = DBSCAN(eps=eps, min_pts=min_pts).fit(pts)
        sizes = clusterer.cluster_sizes()
        # every cluster contains at least one core point's neighbourhood
        for size in sizes.values():
            assert size >= 1
