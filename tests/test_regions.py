"""Unit tests for Region / RegionSpec."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec


def ds(n=100):
    return Dataset(np.arange(n, dtype=float), numeric={"a": np.zeros(n)})


class TestRegion:
    def test_duration(self):
        assert Region(10.0, 40.0).duration == 30.0

    def test_zero_length_allowed(self):
        assert Region(5.0, 5.0).duration == 0.0

    def test_reversed_rejected(self):
        with pytest.raises(ValueError):
            Region(10.0, 5.0)

    def test_contains_inclusive(self):
        mask = Region(2.0, 4.0).contains(np.arange(6.0))
        assert list(mask) == [False, False, True, True, True, False]

    def test_widen_extends_both_ends(self):
        r = Region(10.0, 20.0).widened(0.1)
        assert r.start == 9.0 and r.end == 21.0

    def test_widen_negative_shrinks(self):
        r = Region(10.0, 20.0).widened(-0.1)
        assert r.start == 11.0 and r.end == 19.0

    def test_widen_never_inverts(self):
        r = Region(10.0, 20.0).widened(-0.9)
        assert r.end >= r.start

    def test_intersects_overlap_and_touch(self):
        assert Region(0.0, 10.0).intersects(Region(5.0, 15.0))
        assert Region(0.0, 10.0).intersects(Region(10.0, 20.0))  # shared point
        assert Region(5.0, 15.0).intersects(Region(0.0, 10.0))

    def test_intersects_disjoint(self):
        assert not Region(0.0, 10.0).intersects(Region(10.5, 20.0))
        assert not Region(10.5, 20.0).intersects(Region(0.0, 10.0))


class TestRegionSpecMasks:
    def test_abnormal_mask(self):
        spec = RegionSpec.from_bounds([(10, 19)])
        mask = spec.abnormal_mask(ds())
        assert mask.sum() == 10
        assert mask[10] and mask[19] and not mask[20]

    def test_multiple_abnormal_regions(self):
        spec = RegionSpec.from_bounds([(0, 4), (90, 94)])
        assert spec.abnormal_mask(ds()).sum() == 10

    def test_implicit_normal_is_complement(self):
        spec = RegionSpec.from_bounds([(10, 19)])
        normal = spec.normal_mask(ds())
        assert normal.sum() == 90
        assert not normal[15]

    def test_explicit_normal_limits_rows(self):
        spec = RegionSpec.from_bounds([(10, 19)], normal=[(50, 59)])
        normal = spec.normal_mask(ds())
        assert normal.sum() == 10
        # rows in neither region are ignored
        assert not normal[0] and not normal[99]

    def test_explicit_normal_excludes_abnormal_overlap(self):
        spec = RegionSpec.from_bounds([(10, 19)], normal=[(15, 24)])
        normal = spec.normal_mask(ds())
        assert normal.sum() == 5  # 20..24 only

    def test_validate_accepts_good_spec(self):
        RegionSpec.from_bounds([(10, 19)]).validate(ds())

    def test_validate_rejects_empty_abnormal(self):
        spec = RegionSpec.from_bounds([(1000, 2000)])
        with pytest.raises(ValueError):
            spec.validate(ds())

    def test_validate_rejects_empty_normal(self):
        spec = RegionSpec.from_bounds([(0, 99)])
        with pytest.raises(ValueError):
            spec.validate(ds())

    def test_validate_rejects_out_of_bounds_abnormal(self):
        spec = RegionSpec.from_bounds([(10, 19), (500, 600)])
        with pytest.raises(ValueError, match="outside the dataset time span"):
            spec.validate(ds())

    def test_validate_rejects_normal_abnormal_overlap(self):
        spec = RegionSpec.from_bounds([(10, 19)], normal=[(15, 30)])
        with pytest.raises(ValueError, match="overlaps abnormal region"):
            spec.validate(ds())

    def test_validate_accepts_touching_span_edge(self):
        # partially out-of-bounds but intersecting the span is fine
        RegionSpec.from_bounds([(90, 150)]).validate(ds())


class TestClamped:
    def test_trims_partially_outside(self):
        spec = RegionSpec.from_bounds([(-10, 5), (90, 150)])
        clamped = spec.clamped(ds())
        assert clamped.abnormal[0].start == 0.0
        assert clamped.abnormal[0].end == 5.0
        assert clamped.abnormal[1].start == 90.0
        assert clamped.abnormal[1].end == 99.0

    def test_drops_wholly_outside(self):
        spec = RegionSpec.from_bounds([(10, 19), (500, 600)])
        clamped = spec.clamped(ds())
        assert len(clamped.abnormal) == 1
        assert clamped.abnormal[0] == Region(10.0, 19.0)

    def test_clamps_explicit_normal(self):
        spec = RegionSpec.from_bounds([(10, 19)], normal=[(-5, 5), (200, 300)])
        clamped = spec.clamped(ds())
        assert clamped.normal == [Region(0.0, 5.0)]

    def test_inside_spec_unchanged(self):
        spec = RegionSpec.from_bounds([(10, 19)], normal=[(40, 50)])
        clamped = spec.clamped(ds())
        assert clamped.abnormal == spec.abnormal
        assert clamped.normal == spec.normal

    def test_empty_dataset_passthrough(self):
        empty = Dataset(
            np.zeros(0), numeric={"a": np.zeros(0)}
        )
        spec = RegionSpec.from_bounds([(10, 19)])
        clamped = spec.clamped(empty)
        assert clamped.abnormal == spec.abnormal

    def test_then_validate_succeeds(self):
        spec = RegionSpec.from_bounds([(90, 150)])
        clamped = spec.clamped(ds())
        clamped.validate(ds())


class TestPerturbation:
    def test_perturbed_widens_all(self):
        spec = RegionSpec.from_bounds([(10, 20), (50, 60)]).perturbed(0.1)
        assert spec.abnormal[0].start == 9.0
        assert spec.abnormal[1].end == 61.0

    def test_perturbed_keeps_normal(self):
        spec = RegionSpec.from_bounds([(10, 20)], normal=[(40, 50)])
        assert spec.perturbed(0.1).normal == spec.normal

    def test_sliced_length(self):
        rng = np.random.default_rng(0)
        spec = RegionSpec.from_bounds([(10, 60)]).sliced(2.0, rng)
        region = spec.abnormal[0]
        assert region.duration == pytest.approx(2.0)
        assert 10.0 <= region.start and region.end <= 60.0

    def test_sliced_short_region_untouched_length(self):
        rng = np.random.default_rng(0)
        spec = RegionSpec.from_bounds([(10, 11)]).sliced(5.0, rng)
        region = spec.abnormal[0]
        assert region.start == 10.0 and region.end == 11.0
