"""Integration tests for the closed remediation loop."""

import numpy as np
import pytest

from repro.actions.loop import RemediationLoop
from repro.actions.policy import AutoRemediator
from repro.anomalies.base import ScheduledAnomaly
from repro.anomalies.library import make_anomaly
from repro.core.causal import CausalModelStore
from repro.core.generator import GeneratorConfig
from repro.core.explain import DBSherlock
from repro.eval.harness import simulate_run
from repro.workload.tpcc import tpcc_workload


@pytest.fixture(scope="module")
def trained_store():
    """Causal models for the two causes the loop tests exercise."""
    sherlock = DBSherlock(config=GeneratorConfig(theta=0.05))
    for key, seed in (("cpu_saturation", 301), ("cpu_saturation", 302),
                      ("network_congestion", 303), ("network_congestion", 304)):
        ds, spec, cause = simulate_run(key, 50, seed=seed)
        sherlock.feedback(cause, sherlock.explain(ds, spec))
    return sherlock.store


def run_loop(store, with_anomaly=True, seed=11):
    loop = RemediationLoop(
        tpcc_workload(),
        AutoRemediator(store, confidence_threshold=0.5),
        check_every_s=5,
    )
    anomalies = []
    if with_anomaly:
        anomalies = [
            ScheduledAnomaly(
                make_anomaly("cpu_saturation", intensity=1.0), 60.0, 200.0
            )
        ]
    return loop.run(150, anomalies, seed=seed)


class TestRemediationLoop:
    def test_detects_and_diagnoses(self, trained_store):
        result = run_loop(trained_store)
        assert result.detected_at is not None
        assert result.detected_at >= 60.0
        assert result.diagnosed_cause == "CPU Saturation"

    def test_applies_correct_action(self, trained_store):
        result = run_loop(trained_store)
        assert result.action_name == "stop external processes"

    def test_latency_recovers_after_action(self, trained_store):
        result = run_loop(trained_store)
        assert result.recovered_at is not None
        assert result.time_to_recovery is not None
        assert result.time_to_recovery < 60.0

    def test_journal_records_outcome(self, trained_store):
        remediator = AutoRemediator(trained_store, confidence_threshold=0.5)
        loop = RemediationLoop(tpcc_workload(), remediator, check_every_s=5)
        loop.run(
            150,
            [ScheduledAnomaly(make_anomaly("cpu_saturation", intensity=1.0),
                              60.0, 200.0)],
            seed=12,
        )
        assert len(remediator.journal) == 1
        record = list(remediator.journal)[0]
        assert record.cause == "CPU Saturation"
        assert record.improvement > 0.2

    def test_quiet_run_takes_no_action(self, trained_store):
        result = run_loop(trained_store, with_anomaly=False, seed=13)
        assert result.action_name is None
        assert result.diagnosed_cause is None

    def test_dataset_collected_for_postmortem(self, trained_store):
        result = run_loop(trained_store)
        assert result.dataset.n_rows == 150
        assert "txn.avg_latency_ms" in result.dataset.numeric_attributes
