"""Tests for attribute fingerprints and schema reconciliation.

The contract: a causal model trained under one collector schema still
diagnoses data from another — renames map back via fingerprints, drops
become *missing* (never mis-mapped), junk columns stay unmatched, and a
model with too little reconciled coverage abstains instead of scoring
garbage.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.causal import CausalModel, CausalModelStore
from repro.core.explain import DBSherlock
from repro.core.persistence import (
    load_store,
    model_from_dict,
    model_to_dict,
    save_store,
)
from repro.core.predicates import NumericPredicate
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec
from repro.schema import (
    AttributeFingerprint,
    SchemaReconciler,
    collect_fingerprints,
    fingerprint_attributes,
    name_similarity,
    rank_with_reconciliation,
    value_similarity,
)


def make_dataset(n=60, name="train"):
    """Small dataset with distinguishable attribute distributions."""
    rng = np.random.default_rng(7)
    ts = np.arange(n, dtype=float)
    numeric = {
        "os.cpu_user": 50.0 + 10.0 * rng.standard_normal(n),
        "os.disk_read": 4000.0 + 300.0 * rng.standard_normal(n),
        "db.lock_waits": np.abs(rng.standard_normal(n)),
        "net.bytes_in": 1e6 + 1e5 * rng.standard_normal(n),
    }
    categorical = {"db.state": np.array(["ok"] * (n // 2) + ["slow"] * (n - n // 2), dtype=object)}
    return Dataset(ts, numeric=numeric, categorical=categorical, name=name)


def make_anomalous_dataset(n=60, name="run"):
    """Dataset where cpu_user jumps mid-run (an actual anomaly)."""
    rng = np.random.default_rng(11)
    ts = np.arange(n, dtype=float)
    cpu = 30.0 + 2.0 * rng.standard_normal(n)
    cpu[n // 3 : 2 * n // 3] += 60.0
    numeric = {
        "os.cpu_user": cpu,
        "os.disk_read": 4000.0 + 300.0 * rng.standard_normal(n),
        "db.lock_waits": np.abs(rng.standard_normal(n)),
        "net.bytes_in": 1e6 + 1e5 * rng.standard_normal(n),
    }
    return Dataset(ts, numeric=numeric, name=name)


def anomaly_spec(n=60):
    return RegionSpec(
        abnormal=[Region(float(n // 3), float(2 * n // 3 - 1))],
        normal=[Region(0.0, float(n // 3 - 1))],
    )


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------
class TestFingerprint:
    def test_numeric_sketch(self):
        fp = AttributeFingerprint.from_values(
            "a", np.arange(100, dtype=float), is_numeric=True
        )
        assert fp.kind == "numeric"
        assert fp.n_samples == 100
        assert fp.lo == 0.0 and fp.hi == 99.0
        assert len(fp.quantiles) == 11
        assert fp.quantiles[5] == pytest.approx(49.5)

    def test_nan_samples_excluded(self):
        values = np.array([1.0, np.nan, 3.0, np.nan])
        fp = AttributeFingerprint.from_values("a", values, is_numeric=True)
        assert fp.n_samples == 2
        assert fp.lo == 1.0 and fp.hi == 3.0

    def test_all_nan_column(self):
        fp = AttributeFingerprint.from_values(
            "a", np.array([np.nan, np.nan]), is_numeric=True
        )
        assert fp.n_samples == 0
        assert fp.quantiles is None

    def test_categorical_domain(self):
        fp = AttributeFingerprint.from_values(
            "s", ["ok", "slow", "ok"], is_numeric=False
        )
        assert fp.kind == "categorical"
        assert fp.domain == frozenset({"ok", "slow"})

    def test_dict_round_trip(self):
        data = make_dataset()
        for attr in data.attributes:
            fp = AttributeFingerprint.from_values(
                attr, data.column(attr), data.is_numeric(attr)
            )
            assert AttributeFingerprint.from_dict(fp.to_dict()) == fp

    def test_merged_takes_hull_and_weighted_quantiles(self):
        a = AttributeFingerprint.from_values(
            "a", np.zeros(10), is_numeric=True
        )
        b = AttributeFingerprint.from_values(
            "a", np.full(30, 4.0), is_numeric=True
        )
        merged = a.merged(b)
        assert merged.lo == 0.0 and merged.hi == 4.0
        assert merged.n_samples == 40
        assert merged.quantiles[0] == pytest.approx(3.0)  # 0.25*0 + 0.75*4

    def test_identical_columns_score_one(self):
        values = np.random.default_rng(1).normal(size=50)
        a = AttributeFingerprint.from_values("x", values, True)
        b = AttributeFingerprint.from_values("y", values, True)
        assert value_similarity(a, b) == pytest.approx(1.0)

    def test_kind_mismatch_scores_zero(self):
        a = AttributeFingerprint.from_values("x", np.ones(5), True)
        b = AttributeFingerprint.from_values("x", ["1"] * 5, False)
        assert value_similarity(a, b) == 0.0

    def test_name_similarity_robust_to_prefix(self):
        assert name_similarity("os.cpu_user", "os.cpu_user") == 1.0
        prefixed = name_similarity("os.cpu_user", "v2.os.cpu_user")
        unrelated = name_similarity("os.cpu_user", "net.bytes_in")
        assert prefixed > 0.6 > unrelated


# ---------------------------------------------------------------------------
# Reconciler
# ---------------------------------------------------------------------------
class TestReconciler:
    def reconcile(self, dataset, model_data=None, **kwargs):
        fps = fingerprint_attributes(model_data or make_dataset())
        return SchemaReconciler(**kwargs).reconcile(fps, dataset)

    def test_identical_schema_all_exact(self):
        data = make_dataset()
        report = self.reconcile(data)
        assert all(m.method == "exact" for m in report.matches.values())
        assert report.missing == []
        assert report.apply(data) is data  # identity: cache-friendly

    def test_renamed_attributes_recovered_by_fingerprint(self):
        data = make_dataset().rename_attributes(
            {"os.cpu_user": "v2.os.cpu_user", "net.bytes_in": "v2.net.bytes_in"}
        )
        report = self.reconcile(data)
        assert report.matches["os.cpu_user"].dataset_attr == "v2.os.cpu_user"
        assert report.matches["os.cpu_user"].method == "fingerprint"
        assert report.matches["net.bytes_in"].dataset_attr == "v2.net.bytes_in"
        assert report.missing == []
        restored = report.apply(data)
        assert "os.cpu_user" in restored
        assert np.array_equal(
            restored.column("os.cpu_user"), data.column("v2.os.cpu_user")
        )

    def test_alias_table_wins_without_threshold(self):
        data = make_dataset().rename_attributes(
            {"db.lock_waits": "totally.different"}
        )
        report = self.reconcile(
            data, aliases={"totally.different": "db.lock_waits"}
        )
        match = report.matches["db.lock_waits"]
        assert match.method == "alias"
        assert match.dataset_attr == "totally.different"

    def test_dropped_attribute_reported_missing(self):
        data = make_dataset().drop_attributes(["os.disk_read"])
        report = self.reconcile(data)
        assert report.missing == ["os.disk_read"]

    def test_below_threshold_is_missing_not_mismapped(self):
        # value-identical but unrelated name: combined score stays below
        # the threshold, so the model attribute must come back missing
        # rather than silently mapped onto a stranger
        train = make_dataset()
        data = train.rename_attributes({"os.cpu_user": "zz.qq"})
        report = self.reconcile(data)
        match = report.matches["os.cpu_user"]
        assert not match.matched
        assert match.method == "missing"
        assert "zz.qq" in report.unmatched_dataset

    def test_junk_columns_stay_unmatched(self):
        base = make_dataset()
        data = Dataset(
            base.timestamps,
            numeric={
                **{a: base.column(a) for a in base.numeric_attributes},
                "junk_0": np.random.default_rng(0).normal(size=base.n_rows),
            },
            categorical={
                a: base.column(a) for a in base.categorical_attributes
            },
        )
        report = self.reconcile(data)
        assert report.unmatched_dataset == ["junk_0"]

    def test_matching_is_one_to_one(self):
        data = make_dataset().rename_attributes(
            {"os.cpu_user": "v2.os.cpu_user"}
        )
        report = self.reconcile(data)
        targets = [
            m.dataset_attr for m in report.matches.values() if m.matched
        ]
        assert len(targets) == len(set(targets))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_drift_permutations(self, seed):
        """Any mix of rename/reorder/drop/add resolves every surviving
        attribute correctly and reports each dropped one missing."""
        rng = np.random.default_rng(seed)
        train = make_dataset()
        numeric = list(train.numeric_attributes)
        renamed = {
            a: f"v2.{a}" for a in numeric if rng.random() < 0.5
        }
        dropped = {
            a
            for a in numeric
            if a not in renamed and rng.random() < 0.3
        }
        drifted = train.rename_attributes(renamed).drop_attributes(dropped)
        if rng.random() < 0.5:  # junk column
            drifted = Dataset(
                drifted.timestamps,
                numeric={
                    **{
                        a: drifted.column(a)
                        for a in drifted.numeric_attributes
                    },
                    "junk_x": rng.normal(size=drifted.n_rows),
                },
                categorical={
                    a: drifted.column(a)
                    for a in drifted.categorical_attributes
                },
            )
        # reorder: Dataset preserves insertion order, shuffle it
        order = list(drifted.numeric_attributes)
        rng.shuffle(order)
        drifted = Dataset(
            drifted.timestamps,
            numeric={a: drifted.column(a) for a in order},
            categorical={
                a: drifted.column(a) for a in drifted.categorical_attributes
            },
        )

        report = self.reconcile(drifted)
        for attr in numeric:
            match = report.matches[attr]
            if attr in dropped:
                assert not match.matched
            else:
                assert match.dataset_attr == renamed.get(attr, attr)
        assert all(m != "junk_x" or not report.matches[a].matched
                   for a, m in ((a, report.matches[a].dataset_attr)
                                for a in report.matches))


# ---------------------------------------------------------------------------
# Reconciled ranking: coverage penalty and abstention
# ---------------------------------------------------------------------------
class TestReconciledRanking:
    def build_model(self):
        data = make_anomalous_dataset()
        predicates = [NumericPredicate("os.cpu_user", lower=60.0)]
        return CausalModel(
            cause="CPU Saturation",
            predicates=predicates,
            fingerprints=fingerprint_attributes(data, ["os.cpu_user"]),
        )

    def test_rename_only_drift_scores_identically(self):
        model = self.build_model()
        test = make_anomalous_dataset(name="test")
        spec = anomaly_spec()
        clean = model.confidence(test, spec)

        drifted = test.rename_attributes({"os.cpu_user": "v2.os.cpu_user"})
        result = rank_with_reconciliation(
            [model], drifted, spec, SchemaReconciler()
        )
        assert result.abstained == []
        assert result.scores == [("CPU Saturation", clean)]

    def test_low_coverage_abstains_at_zero(self):
        model = self.build_model()
        test = make_anomalous_dataset().drop_attributes(["os.cpu_user"])
        # the single predicate attribute is gone: coverage 0 < floor
        result = rank_with_reconciliation(
            [model], test, anomaly_spec(), SchemaReconciler()
        )
        assert result.abstained == ["CPU Saturation"]
        assert result.scores == [("CPU Saturation", 0.0)]

    def test_store_rank_with_reconciler(self):
        store = CausalModelStore()
        store.add(self.build_model())
        test = make_anomalous_dataset().rename_attributes(
            {"os.cpu_user": "v2.os.cpu_user"}
        )
        spec = anomaly_spec()
        scores = store.rank(test, spec, reconciler=SchemaReconciler())
        assert scores[0][0] == "CPU Saturation"
        assert scores[0][1] > 0.5

    def test_collect_fingerprints_unions_models(self):
        a = self.build_model()
        b = CausalModel(
            cause="Other",
            predicates=[NumericPredicate("os.disk_read", lower=0.0)],
        )
        fps = collect_fingerprints([a, b])
        assert fps["os.cpu_user"] is not None
        assert fps["os.disk_read"] is None  # legacy model, name-only


# ---------------------------------------------------------------------------
# Persistence: fingerprints round-trip, v1 files still load
# ---------------------------------------------------------------------------
class TestFingerprintPersistence:
    def test_model_round_trip_keeps_fingerprints(self):
        data = make_dataset()
        model = CausalModel(
            cause="X",
            predicates=[NumericPredicate("os.cpu_user", lower=1.0)],
            fingerprints=fingerprint_attributes(data, ["os.cpu_user"]),
        )
        restored = model_from_dict(model_to_dict(model))
        assert restored.fingerprints == model.fingerprints

    def test_store_round_trip(self, tmp_path):
        data = make_dataset()
        store = CausalModelStore()
        store.add(
            CausalModel(
                cause="X",
                predicates=[NumericPredicate("os.cpu_user", lower=1.0)],
                fingerprints=fingerprint_attributes(data, ["os.cpu_user"]),
            )
        )
        path = tmp_path / "models.json"
        save_store(store, path)
        loaded = load_store(path)
        assert loaded.get("X").fingerprints == store.get("X").fingerprints

    def test_v1_payload_still_loads(self, tmp_path):
        import json

        path = tmp_path / "legacy.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "models": [
                        {
                            "cause": "Legacy",
                            "n_merged": 2,
                            "predicates": [
                                {
                                    "kind": "numeric",
                                    "attr": "a",
                                    "lower": 0.5,
                                    "upper": None,
                                }
                            ],
                        }
                    ],
                }
            )
        )
        store = load_store(path)
        model = store.get("Legacy")
        assert model.n_merged == 2
        assert model.fingerprints == {}

    def test_merge_merges_fingerprints(self):
        data = make_dataset()
        fp = fingerprint_attributes(data, ["os.cpu_user"])
        a = CausalModel(
            "X", [NumericPredicate("os.cpu_user", lower=1.0)], fingerprints=fp
        )
        b = CausalModel(
            "X", [NumericPredicate("os.cpu_user", lower=2.0)], fingerprints=fp
        )
        merged = a.merge(b)
        assert merged.fingerprints["os.cpu_user"].n_samples == 2 * data.n_rows


# ---------------------------------------------------------------------------
# DBSherlock facade: graceful degradation end-to-end
# ---------------------------------------------------------------------------
class TestFacadeDegradation:
    def trained_sherlock(self):
        sherlock = DBSherlock()
        data = make_anomalous_dataset()
        spec = anomaly_spec()
        explanation = sherlock.explain(data, spec)
        sherlock.feedback("CPU Saturation", explanation, dataset=data)
        return sherlock

    def test_feedback_with_dataset_stores_fingerprints(self):
        sherlock = self.trained_sherlock()
        model = sherlock.store.get("CPU Saturation")
        assert model.fingerprints
        assert set(model.fingerprints) <= set(model.attributes)

    def test_clean_explain_has_no_reconciliation(self):
        sherlock = self.trained_sherlock()
        explanation = sherlock.explain(make_anomalous_dataset(), anomaly_spec())
        assert explanation.reconciliation is None
        assert explanation.abstained == []

    def test_drifted_explain_reconciles_and_finds_cause(self):
        sherlock = self.trained_sherlock()
        drifted = make_anomalous_dataset().rename_attributes(
            {a: f"v2.{a}" for a in make_anomalous_dataset().numeric_attributes}
        )
        explanation = sherlock.explain(drifted, anomaly_spec())
        assert explanation.reconciliation is not None
        assert explanation.top_cause == "CPU Saturation"

    def test_total_schema_loss_abstains(self):
        sherlock = self.trained_sherlock()
        model_attrs = sherlock.store.get("CPU Saturation").attributes
        stripped = make_anomalous_dataset().drop_attributes(model_attrs)
        explanation = sherlock.explain(stripped, anomaly_spec())
        assert "CPU Saturation" in explanation.abstained
        assert explanation.top_cause is None


# ---------------------------------------------------------------------------
# Dataset.rename_attributes
# ---------------------------------------------------------------------------
class TestRenameAttributes:
    def test_preserves_order_and_values(self):
        data = make_dataset()
        renamed = data.rename_attributes({"os.cpu_user": "cpu"})
        assert renamed.numeric_attributes[0] == "cpu"
        assert np.array_equal(
            renamed.column("cpu"), data.column("os.cpu_user")
        )

    def test_collision_with_kept_attr_preserves_data(self):
        data = make_dataset()
        renamed = data.rename_attributes({"os.cpu_user": "os.disk_read"})
        assert np.array_equal(
            renamed.column("os.disk_read"), data.column("os.cpu_user")
        )
        assert np.array_equal(
            renamed.column("os.disk_read~orig"), data.column("os.disk_read")
        )

    def test_collapsing_rename_rejected(self):
        data = make_dataset()
        with pytest.raises(ValueError):
            data.rename_attributes(
                {"os.cpu_user": "x", "os.disk_read": "x"}
            )
