"""Unit tests for the SEM causal-graph substrate (Appendix F)."""

import numpy as np
import pytest

from repro.synth.sem import (
    LinearCausalGraph,
    attr_name,
    generate_domain_knowledge,
    random_linear_causal_graph,
    sem_dataset,
)


class TestGraphStructure:
    def test_effect_variable_has_parents(self):
        for seed in range(20):
            g = random_linear_causal_graph(7, rng=np.random.default_rng(seed))
            assert g.parents(g.effect_variable)

    def test_effect_variable_has_no_children(self):
        for seed in range(20):
            g = random_linear_causal_graph(7, rng=np.random.default_rng(seed))
            assert g.children(g.effect_variable) == []

    def test_root_causes_exist(self):
        for seed in range(20):
            g = random_linear_causal_graph(7, rng=np.random.default_rng(seed))
            assert g.root_causes

    def test_acyclic_by_construction(self):
        g = random_linear_causal_graph(7, rng=np.random.default_rng(1))
        for (src, dst) in g.coefficients:
            assert src < dst

    def test_coefficients_nonzero_integers(self):
        g = random_linear_causal_graph(7, rng=np.random.default_rng(2))
        for c in g.coefficients.values():
            assert c != 0 and c == int(c) and -10 <= c <= 10

    def test_reachability(self):
        g = LinearCausalGraph(3, {(0, 1): 2.0, (1, 2): 3.0})
        assert g.has_path(0, 2)
        assert not g.has_path(2, 0)

    def test_ancestors(self):
        g = LinearCausalGraph(3, {(0, 1): 2.0, (1, 2): 3.0})
        assert g.ancestors(2) == {0, 1}

    def test_too_few_variables_rejected(self):
        with pytest.raises(ValueError):
            random_linear_causal_graph(1)


class TestSemData:
    def test_dataset_shape(self):
        sd = sem_dataset(k=7, n_rows=600, seed=3)
        assert sd.dataset.n_rows == 600
        assert len(sd.dataset.numeric_attributes) == 7

    def test_abnormal_window_size(self):
        sd = sem_dataset(n_rows=600, abnormal_fraction=0.1, seed=4)
        assert sd.spec.abnormal_mask(sd.dataset).sum() == 60

    def test_root_cause_shifts_in_window(self):
        sd = sem_dataset(seed=5)
        root = attr_name(sd.graph.root_causes[0])
        values = sd.dataset.column(root)
        abnormal = sd.spec.abnormal_mask(sd.dataset)
        assert values[abnormal].mean() > values[~abnormal].mean() + 50.0

    def test_linear_equations_hold(self):
        sd = sem_dataset(seed=6)
        g = sd.graph
        for i in range(g.k):
            parents = g.parents(i)
            if not parents:
                continue
            expected = np.zeros(sd.dataset.n_rows)
            for j in parents:
                expected += g.coefficients[(j, i)] * sd.dataset.column(attr_name(j))
            residual = sd.dataset.column(attr_name(i)) - expected
            assert np.abs(residual).std() < 2.0  # ε ~ N(0,1)

    def test_rules_reference_root_causes(self):
        sd = sem_dataset(seed=7)
        roots = {attr_name(i) for i in sd.graph.root_causes}
        for rule in sd.rules:
            assert rule.cause_attr in roots

    def test_ground_truth_partition(self):
        sd = sem_dataset(seed=8)
        assert not (sd.should_prune & sd.should_keep)

    def test_ground_truth_matches_reachability(self):
        sd = sem_dataset(seed=9)
        index = {attr_name(i): i for i in range(sd.graph.k)}
        for attr in sd.should_prune:
            assert any(
                sd.graph.has_path(index[r.cause_attr], index[attr])
                for r in sd.rules
                if r.effect_attr == attr
            )

    def test_deterministic_given_seed(self):
        a = sem_dataset(seed=10)
        b = sem_dataset(seed=10)
        assert np.allclose(a.dataset.column("V1"), b.dataset.column("V1"))
        assert a.rules == b.rules


class TestDomainKnowledgeGeneration:
    def test_no_inverse_rules(self):
        rng = np.random.default_rng(11)
        g = random_linear_causal_graph(7, rng=rng)
        rules = generate_domain_knowledge(g, rng)
        pairs = {(r.cause_attr, r.effect_attr) for r in rules}
        for cause, effect in pairs:
            assert (effect, cause) not in pairs

    def test_rules_capped_per_cause(self):
        rng = np.random.default_rng(12)
        g = random_linear_causal_graph(7, rng=rng)
        rules = generate_domain_knowledge(g, rng, rules_per_cause=1)
        by_cause = {}
        for r in rules:
            by_cause.setdefault(r.cause_attr, []).append(r)
        assert all(len(v) <= 1 for v in by_cause.values())
