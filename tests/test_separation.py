"""Unit tests for separation power and normalization (Equations 1-2)."""

import numpy as np
import pytest

from repro.core.predicates import CategoricalPredicate, NumericPredicate
from repro.core.separation import (
    normalize_values,
    normalized_difference,
    region_means,
    separation_power,
)
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec


def two_phase_dataset():
    """Rows 0-9 have a=1 (normal); rows 10-19 have a=10 (abnormal)."""
    values = np.asarray([1.0] * 10 + [10.0] * 10)
    return (
        Dataset(np.arange(20, dtype=float), numeric={"a": values},
                categorical={"c": ["lo"] * 10 + ["hi"] * 10}),
        RegionSpec(abnormal=[Region(10.0, 19.0)]),
    )


class TestSeparationPower:
    def test_perfect_separator_scores_one(self):
        ds, spec = two_phase_dataset()
        assert separation_power(NumericPredicate("a", lower=5.0), ds, spec) == 1.0

    def test_anti_separator_scores_minus_one(self):
        ds, spec = two_phase_dataset()
        assert separation_power(NumericPredicate("a", upper=5.0), ds, spec) == -1.0

    def test_useless_predicate_scores_zero(self):
        ds, spec = two_phase_dataset()
        assert separation_power(NumericPredicate("a", lower=0.0), ds, spec) == 0.0

    def test_partial_separation(self):
        ds, spec = two_phase_dataset()
        # matches all abnormal and half of normal: values >0.5 cover all...
        # use a bound inside the normal cluster instead
        values = np.asarray([1.0] * 5 + [6.0] * 5 + [10.0] * 10)
        ds2 = Dataset(np.arange(20, dtype=float), numeric={"a": values})
        power = separation_power(NumericPredicate("a", lower=5.0), ds2, spec)
        assert power == pytest.approx(1.0 - 0.5)

    def test_categorical_predicate(self):
        ds, spec = two_phase_dataset()
        pred = CategoricalPredicate.of("c", ["hi"])
        assert separation_power(pred, ds, spec) == 1.0

    def test_empty_region_rejected(self):
        ds, _ = two_phase_dataset()
        empty = RegionSpec(abnormal=[Region(500.0, 600.0)])
        with pytest.raises(ValueError):
            separation_power(NumericPredicate("a", lower=5.0), ds, empty)


class TestNormalization:
    def test_unit_interval(self):
        out = normalize_values(np.asarray([2.0, 4.0, 6.0]))
        assert list(out) == [0.0, 0.5, 1.0]

    def test_constant_maps_to_zero(self):
        out = normalize_values(np.asarray([3.0, 3.0]))
        assert list(out) == [0.0, 0.0]

    def test_empty_passthrough(self):
        assert normalize_values(np.asarray([])).size == 0

    def test_negative_values(self):
        out = normalize_values(np.asarray([-10.0, 0.0, 10.0]))
        assert list(out) == [0.0, 0.5, 1.0]


class TestNormalizedDifference:
    def test_step_has_large_difference(self):
        ds, spec = two_phase_dataset()
        assert normalized_difference("a", ds, spec) == pytest.approx(1.0)

    def test_flat_attribute_has_zero_difference(self):
        ds, spec = two_phase_dataset()
        flat = Dataset(ds.timestamps, numeric={"a": np.ones(20)})
        assert normalized_difference("a", flat, spec) == 0.0

    def test_categorical_rejected(self):
        ds, spec = two_phase_dataset()
        with pytest.raises(TypeError):
            normalized_difference("c", ds, spec)

    def test_region_means(self):
        values = np.asarray([0.0, 0.0, 1.0, 1.0])
        abnormal = np.asarray([False, False, True, True])
        mu_a, mu_n = region_means(values, abnormal, ~abnormal)
        assert (mu_a, mu_n) == (1.0, 0.0)

    def test_region_means_empty_rejected(self):
        values = np.asarray([1.0, 2.0])
        with pytest.raises(ValueError):
            region_means(values, np.asarray([False, False]),
                         np.asarray([True, True]))
