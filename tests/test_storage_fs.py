"""Storage durability under a hostile filesystem.

Three layers under test, bottom-up:

* the fault-injecting storage shim itself (:mod:`repro.faults.fs`) —
  each injector is deterministic, targetable, and a passthrough when
  idle;
* crash-point properties of the persistence primitives — killing
  ``CheckpointStore.save`` at *every* fault site (temp write, fsync,
  either rename, torn renames) must leave a loadable consistent prior
  generation, and truncating the WAL's active segment at *every* byte
  offset must replay to a clean prefix;
* the durability policy (:mod:`repro.stream.durability`) — transient
  errors are retried, full-disk/fatal errors degrade the tenant into
  acknowledged-but-volatile mode, and a healed disk drains the buffer
  and re-promotes without losing or duplicating a tick.

Plus the two "sick disk must not abort the diagnosis" paths: the alias
table and the health journal swallow write faults, keep their in-memory
state, and report through ``repro_storage_write_errors_total``.
"""

import errno
import json

import pytest

from repro.faults import fs as fsmod
from repro.faults.fs import (
    FlakyIO,
    FullDisk,
    ReadCorruption,
    SlowFsync,
    StorageShim,
    TornRename,
)
from repro.fleet.health import HealthTracker, read_health_journal
from repro.schema.aliases import AliasStore
from repro.stream.durability import (
    DEGRADED,
    DURABLE,
    TenantDurability,
    classify_storage_error,
)
from repro.stream.wal import CheckpointStore, TickWAL


class FailOp(fsmod.FSFault):
    """Test fault: fail exactly the nth matching call of one primitive."""

    kind = "fail_op"

    def __init__(self, op, nth=1, err=errno.EIO, path_filter=None):
        super().__init__(path_filter)
        self.op = op
        self.nth = int(nth)
        self.err = int(err)
        self._seen = 0

    def _hit(self, path):
        self._seen += 1
        if self._seen == self.nth:
            self._fire()
            raise OSError(
                self.err, f"injected: {self.op} #{self.nth} failed", path
            )

    def on_write(self, path, data):
        if self.op == "write":
            self._hit(path)

    def on_fsync(self, path):
        if self.op == "fsync":
            self._hit(path)

    def on_replace(self, src, dst):
        if self.op == "replace":
            self._hit(dst)


def ticks_upto(n):
    return [
        (float(i), {"cpu": 1.0 + i, "io": 0.5 * i}, {"state": "ok"})
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# The shim and its injectors
# ---------------------------------------------------------------------------
class TestStorageShim:
    def test_idle_shim_is_a_passthrough(self, tmp_path):
        shim = StorageShim()
        target = tmp_path / "direct.txt"
        with open(target, "w") as fh:
            shim.write(fh, "payload\n")
            shim.fsync(fh)
        moved = tmp_path / "moved.txt"
        shim.replace(target, moved)
        assert not target.exists()
        assert shim.read_text(moved) == "payload\n"
        assert shim.read_bytes(moved) == b"payload\n"

    def test_path_filter_targets_one_tenant(self, tmp_path):
        fault = FullDisk(path_filter=str(tmp_path / "sick"))
        shim = StorageShim([fault])
        sick = tmp_path / "sick" / "f.txt"
        healthy = tmp_path / "healthy" / "f.txt"
        for p in (sick, healthy):
            p.parent.mkdir()
        with open(healthy, "w") as fh:
            shim.write(fh, "fine")  # filter does not match: no fault
        with open(sick, "w") as fh:
            with pytest.raises(OSError) as excinfo:
                shim.write(fh, "doomed")
        assert excinfo.value.errno == errno.ENOSPC
        assert fault.fired == 1

    def test_sequence_path_filter_matches_any(self):
        fault = fsmod.FSFault(path_filter=["ticks.wal", "checkpoint.json"])
        assert fault.matches("/x/t0/ticks.wal/seg-00000000.wal")
        assert fault.matches("/x/t0/checkpoint.json.tmp")
        assert not fault.matches("/x/t0/health.log")
        fault.active = False
        assert not fault.matches("/x/t0/ticks.wal")

    def test_scoped_fs_installs_and_restores(self):
        before = fsmod.get_fs()
        inner = StorageShim()
        with fsmod.scoped_fs(inner) as active:
            assert fsmod.get_fs() is inner is active
        assert fsmod.get_fs() is before

    def test_full_disk_heals(self, tmp_path):
        fault = FullDisk(after_writes=2)
        shim = StorageShim([fault])
        target = tmp_path / "f.txt"
        with open(target, "w") as fh:
            shim.write(fh, "a")
            shim.write(fh, "b")
            with pytest.raises(OSError):
                shim.write(fh, "c")
            with pytest.raises(OSError):
                shim.fsync(fh)
            fault.heal()
            shim.write(fh, "d")
            shim.fsync(fh)
        assert target.read_text() == "abd"

    def test_flaky_io_is_seed_deterministic(self, tmp_path):
        def pattern(seed):
            fault = FlakyIO(rate=0.4, seed=seed)
            shim = StorageShim([fault])
            hits = []
            with open(tmp_path / f"s{seed}.txt", "w") as fh:
                for _ in range(40):
                    try:
                        shim.write(fh, "x")
                        hits.append(0)
                    except OSError as exc:
                        assert exc.errno == errno.EIO
                        hits.append(1)
            return hits

        first = pattern(7)
        assert first == pattern(7)
        assert sum(first) > 0
        assert first != pattern(8)

    def test_torn_rename_tears_the_nth_replace(self, tmp_path):
        fault = TornRename(nth=2, keep_fraction=0.5)
        shim = StorageShim([fault])
        src = tmp_path / "src.txt"
        src.write_text("0123456789")
        shim.replace(src, tmp_path / "ok.txt")  # first replace: untouched
        src2 = tmp_path / "src2.txt"
        src2.write_text("0123456789")
        with pytest.raises(OSError):
            shim.replace(src2, tmp_path / "torn.txt")
        assert (tmp_path / "torn.txt").read_text() == "01234"
        assert src2.exists()  # the source survives the failed rename

    def test_slow_fsync_stalls_matching_fsyncs(self, tmp_path):
        stalls = []
        fault = SlowFsync(0.25, sleep=stalls.append)
        shim = StorageShim([fault])
        with open(tmp_path / "f.txt", "w") as fh:
            shim.write(fh, "x")
            shim.fsync(fh)
        assert stalls == [0.25]

    def test_read_corruption_modes(self, tmp_path):
        target = tmp_path / "payload.json"
        target.write_bytes(b'{"k": "v", "pad": "' + b"x" * 200 + b'"}')
        clean = target.read_bytes()
        flipped = StorageShim([ReadCorruption("bitflip", seed=3)]).read_bytes(
            target
        )
        assert flipped != clean and len(flipped) == len(clean)
        # deterministic: same seed corrupts identically
        again = StorageShim([ReadCorruption("bitflip", seed=3)]).read_bytes(
            target
        )
        assert again == flipped
        cut = StorageShim([ReadCorruption("truncate", seed=3)]).read_bytes(
            target
        )
        assert len(cut) < len(clean) and clean.startswith(cut)

    def test_injector_parameter_validation(self):
        with pytest.raises(ValueError):
            FlakyIO(rate=1.5)
        with pytest.raises(ValueError):
            TornRename(nth=0)
        with pytest.raises(ValueError):
            SlowFsync(-1.0)
        with pytest.raises(ValueError):
            ReadCorruption(mode="scramble")


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------
class TestClassifyStorageError:
    @pytest.mark.parametrize(
        "code,expected",
        [
            (errno.ENOSPC, "full_disk"),
            (errno.EDQUOT, "full_disk"),
            (errno.EIO, "transient"),
            (errno.EAGAIN, "transient"),
            (errno.EINTR, "transient"),
            (errno.ETIMEDOUT, "transient"),
            (errno.EBUSY, "transient"),
            (errno.EACCES, "fatal"),
            (errno.EROFS, "fatal"),
            (None, "fatal"),
        ],
    )
    def test_taxonomy(self, code, expected):
        exc = OSError(code, "x") if code is not None else OSError("x")
        assert classify_storage_error(exc) == expected


# ---------------------------------------------------------------------------
# Crash-point properties of the checkpoint store
# ---------------------------------------------------------------------------
class TestCheckpointCrashPoints:
    STATE1 = {"generation": 1, "detector": {"tick_count": 10}}
    STATE2 = {"generation": 2, "detector": {"tick_count": 20}}

    # every fault site inside a save() that updates an existing
    # checkpoint: the temp-file write, its fsync, the current→previous
    # rotation (replace #1), and the temp→current landing (replace #2)
    # — each as a clean failure and, for the renames, as a *torn*
    # rename leaving truncated bytes on the destination.
    @pytest.mark.parametrize(
        "fault_factory",
        [
            lambda: FailOp("write", nth=1, err=errno.ENOSPC),
            lambda: FailOp("fsync", nth=1, err=errno.EIO),
            lambda: FailOp("replace", nth=1, err=errno.EIO),
            lambda: FailOp("replace", nth=2, err=errno.EIO),
            lambda: TornRename(nth=1),
            lambda: TornRename(nth=2),
        ],
        ids=[
            "write-fails",
            "fsync-fails",
            "rotation-rename-fails",
            "landing-rename-fails",
            "rotation-rename-torn",
            "landing-rename-torn",
        ],
    )
    def test_crash_mid_save_preserves_previous_generation(
        self, tmp_path, fault_factory
    ):
        path = tmp_path / "checkpoint.json"
        shim = StorageShim()
        store = CheckpointStore(path, fs=shim)
        store.save(self.STATE1)  # good generation laid down fault-free

        fault = shim.add(fault_factory())
        with pytest.raises(OSError):
            store.save(self.STATE2)
        assert fault.fired == 1
        # the crash site never costs the prior consistent state
        assert store.load() == self.STATE1
        # no temp-file litter survives the failed save
        assert not list(tmp_path.glob("*.tmp"))

        # the disk heals: the next save completes the interrupted update
        shim.remove(fault)
        store.save(self.STATE2)
        assert store.load() == self.STATE2

    def test_bitflip_read_corruption_is_caught_by_crc(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        store = CheckpointStore(path, fs=StorageShim())
        store.save(self.STATE1)
        rotten = CheckpointStore(
            path, fs=StorageShim([ReadCorruption("bitflip", seed=11)])
        )
        # one generation on disk, and its read is rotten: load refuses
        # to return unverified bytes rather than guessing
        assert rotten.load() is None

    def test_corrupt_current_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        store = CheckpointStore(path, fs=StorageShim())
        store.save(self.STATE1)
        store.save(self.STATE2)

        class RotCurrentGeneration(fsmod.FSFault):
            kind = "rot_current"

            def on_read(self, p, data):
                if p.endswith("checkpoint.json"):
                    self._fire()
                    return data[: len(data) // 2]
                return data

        rotten = CheckpointStore(
            path, fs=StorageShim([RotCurrentGeneration()])
        )
        assert rotten.load() == self.STATE1


# ---------------------------------------------------------------------------
# Crash-point property of the WAL: truncate the tail anywhere, replay
# a clean prefix
# ---------------------------------------------------------------------------
class TestWALCrashPoints:
    def test_any_tail_truncation_replays_a_clean_prefix(self, tmp_path):
        path = tmp_path / "ticks.wal"
        ticks = ticks_upto(4)
        with TickWAL(path, fsync_every=1) as wal:
            for t, num, cat in ticks:
                wal.append(t, num, cat)
        seg = sorted(path.glob("seg-*.wal"))[-1]
        pristine = seg.read_bytes()
        assert pristine.count(b"\n") == len(ticks)

        for cut in range(len(pristine) + 1):
            seg.write_bytes(pristine[:cut])
            reader = TickWAL(path)
            replayed, report = reader.replay_report()
            reader.close()
            complete = pristine[:cut].count(b"\n")
            assert replayed == ticks[:complete], f"cut at byte {cut}"
            # an uncorrupted prefix never reports corrupt records; a
            # trailing partial line is a torn tail, not corruption
            assert report.corrupt_records == 0, f"cut at byte {cut}"
            assert report.torn_tail == (
                cut > 0 and not pristine[:cut].endswith(b"\n")
            ), f"cut at byte {cut}"
        seg.write_bytes(pristine)

    def test_corrupt_middle_segment_is_skipped_and_named(self, tmp_path):
        path = tmp_path / "ticks.wal"
        with TickWAL(path, fsync_every=1, segment_bytes=128) as wal:
            for t, num, cat in ticks_upto(12):
                wal.append(t, num, cat)
            segments = wal.segments()
        assert len(segments) >= 3
        victim = segments[1]
        raw = victim.read_bytes()
        rotten = bytearray(raw)
        # flip one byte safely inside the first record's payload (past
        # the 9-byte CRC prefix, well before the line's newline)
        rotten[raw.index(b"\n") // 2 + 9] ^= 0xFF
        victim.write_bytes(bytes(rotten))

        reader = TickWAL(path)
        replayed, report = reader.replay_report()
        reader.close()
        assert report.corrupt_records == 1
        assert victim.name in report.corrupt_segments
        assert not report.torn_tail  # mid-log rot is not a torn tail
        # every intact record survives, in order
        times = [t for t, _, _ in replayed]
        assert times == sorted(times)
        assert len(times) == 11

    def test_replay_under_read_corruption_never_raises(self, tmp_path):
        path = tmp_path / "ticks.wal"
        with TickWAL(path, fsync_every=1) as wal:
            for t, num, cat in ticks_upto(10):
                wal.append(t, num, cat)
        rotten = TickWAL(
            path, fs=StorageShim([ReadCorruption("bitflip", seed=2)])
        )
        replayed, report = rotten.replay_report()
        rotten.close()
        # the CRC gate turns silent corruption into counted skips
        assert report.corrupt_records + len(replayed) <= 10
        assert report.corrupt_records >= 1
        for t, num, cat in replayed:  # survivors parsed fully typed
            assert isinstance(t, float) and isinstance(num, dict)

    def test_compact_bounds_a_quarantined_lane(self, tmp_path):
        path = tmp_path / "ticks.wal"
        wal = TickWAL(path, fsync_every=1, segment_bytes=128)
        for t, num, cat in ticks_upto(40):
            wal.append(t, num, cat)
        grown = wal.bytes_retained()
        assert grown > 512
        dropped = wal.compact(512)
        assert dropped > 0
        assert wal.bytes_retained() <= 512
        assert wal.bytes_retained() == grown - dropped
        # the active segment is never compacted away
        assert wal.active_segment().exists()
        wal.close()


# ---------------------------------------------------------------------------
# The durability policy: retry, degrade, buffer, re-promote
# ---------------------------------------------------------------------------
class TestTenantDurability:
    def _managed(self, tmp_path, shim, transitions=None, **kw):
        wal = TickWAL(tmp_path / "ticks.wal", fsync_every=1, fs=shim)
        ckpt = CheckpointStore(tmp_path / "checkpoint.json", fs=shim)
        kw.setdefault("backoff_s", 0.0)
        kw.setdefault("sleep", lambda s: None)
        if transitions is not None:
            kw["on_transition"] = lambda mode, why: transitions.append(
                (mode, why)
            )
        return TenantDurability("t0", wal, ckpt, **kw)

    def test_transient_error_is_retried_not_degraded(self, tmp_path):
        shim = StorageShim([FailOp("write", nth=1, err=errno.EIO)])
        managed = self._managed(tmp_path, shim, max_retries=2)
        assert managed.append(0.0, {"cpu": 1.0}) is True
        assert managed.mode == DURABLE
        assert [t for t, _, _ in managed.wal.replay()] == [0.0]

    def test_fatal_error_degrades_without_retrying(self, tmp_path):
        fault = FailOp("write", nth=1, err=errno.EACCES)
        managed = self._managed(
            tmp_path, StorageShim([fault]), max_retries=5
        )
        assert managed.append(0.0, {"cpu": 1.0}) is False
        assert managed.mode == DEGRADED
        assert managed.degraded_reason.startswith("fatal")
        assert fault.fired == 1  # fatal: no retry burned the budget

    def test_full_disk_degrade_heal_repromote_loses_nothing(self, tmp_path):
        fault = FullDisk(path_filter="ticks.wal")
        shim = StorageShim([fault])
        transitions = []
        managed = self._managed(
            tmp_path,
            shim,
            transitions,
            max_retries=1,
            probe_every=3,
        )
        fault.active = False
        assert managed.append(0.0, {"cpu": 1.0}) is True
        fault.active = True

        # the disk fills: acknowledged-but-volatile from here on
        assert managed.append(1.0, {"cpu": 2.0}) is False
        assert managed.mode == DEGRADED
        assert managed.degraded_reason.startswith("full_disk")
        for i in range(2, 5):
            managed.append(float(i), {"cpu": 1.0})
        assert len(managed.buffer) == 4
        assert managed.degraded_count == 1  # probes failed, no flapping

        # the disk heals: the next probe drains and re-promotes
        fault.heal()
        for i in range(5, 8):
            managed.append(float(i), {"cpu": 1.0})
        assert managed.mode == DURABLE
        assert len(managed.buffer) == 0  # drained
        assert managed.repromoted_count == 1
        assert transitions[0][0] == DEGRADED
        assert transitions[-1] == (DURABLE, "disk healed")
        # conservation: every acknowledged tick is in the WAL exactly once
        times = [t for t, _, _ in managed.wal.replay()]
        assert times == [float(i) for i in range(8)]

    def test_fsync_boundary_failure_never_duplicates_a_tick(self, tmp_path):
        # the write lands, the batch fsync fails: the tick is *in* the
        # log (volatile), so neither the retry, the degrade buffer, nor
        # the healed probe may append it a second time
        fault = FlakyIO(rate=1.0, ops=("fsync",), path_filter="ticks.wal")
        fault.active = False
        shim = StorageShim([fault])
        wal = TickWAL(tmp_path / "ticks.wal", fsync_every=2, fs=shim)
        managed = TenantDurability(
            "t0",
            wal,
            CheckpointStore(tmp_path / "checkpoint.json", fs=shim),
            max_retries=1,
            backoff_s=0.0,
            sleep=lambda s: None,
            probe_every=2,
        )
        assert managed.append(0.0, {"cpu": 1.0}) is True
        fault.active = True
        assert managed.append(1.0, {"cpu": 1.0}) is False
        assert managed.mode == DEGRADED
        assert len(managed.buffer) == 0  # already written, only fsync owed
        managed.append(2.0, {"cpu": 1.0})
        managed.append(3.0, {"cpu": 1.0})  # probe fires, fsync still sick
        assert managed.mode == DEGRADED
        fault.active = False
        managed.append(4.0, {"cpu": 1.0})
        managed.append(5.0, {"cpu": 1.0})  # probe drains and re-promotes
        assert managed.mode == DURABLE
        times = [t for t, _, _ in wal.replay()]
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_retire_wal_survives_a_refused_rotation_fsync(self, tmp_path):
        # Retention maintenance is not a durability promise: a sick
        # rotation fsync must neither raise nor degrade the tenant —
        # the mark just stays put until the next checkpoint.
        fault = FullDisk(path_filter="ticks.wal")
        shim = StorageShim([fault])
        managed = self._managed(tmp_path, shim, max_retries=1)
        fault.active = False
        for i in range(4):
            assert managed.append(float(i), {"cpu": 1.0}) is True
        fault.active = True
        assert managed.retire_wal(mark=True, max_bytes=1 << 20) is False
        assert managed.mode == DURABLE
        assert fault.fired >= 1
        # nothing was retired on the failed attempt: all ticks replayable
        assert [t for t, _, _ in managed.wal.replay()] == [
            0.0,
            1.0,
            2.0,
            3.0,
        ]
        fault.active = False
        assert managed.retire_wal(mark=True, max_bytes=1 << 20) is True

    def test_volatile_buffer_is_bounded(self, tmp_path):
        fault = FullDisk()
        managed = self._managed(
            tmp_path,
            StorageShim([fault]),
            max_retries=0,
            probe_every=1000,
            max_volatile_ticks=4,
        )
        for i in range(9):
            managed.append(float(i), {"cpu": 1.0})
        assert managed.mode == DEGRADED
        assert len(managed.buffer) == 4
        assert managed.volatile_dropped == 9 - 4
        # the survivors are the *newest* ticks
        assert [t for t, _, _ in managed.buffer] == [5.0, 6.0, 7.0, 8.0]

    def test_checkpoint_declines_while_degraded(self, tmp_path):
        fault = FullDisk()
        managed = self._managed(
            tmp_path, StorageShim([fault]), max_retries=0, probe_every=1000
        )
        managed.append(0.0, {"cpu": 1.0})
        assert managed.mode == DEGRADED
        assert managed.save_checkpoint({"generation": 1}) is False
        assert managed.checkpoints.load() is None  # nothing torn on disk

        # a checkpoint attempt is exactly when a healed disk is noticed
        fault.heal()
        assert managed.save_checkpoint({"generation": 1}) is True
        assert managed.mode == DURABLE
        assert managed.checkpoints.load() == {"generation": 1}
        assert [t for t, _, _ in managed.wal.replay()] == [0.0]

    def test_flush_volatile_reports_stranded_ticks(self, tmp_path):
        fault = FullDisk()
        managed = self._managed(
            tmp_path, StorageShim([fault]), max_retries=0, probe_every=1000
        )
        for i in range(3):
            managed.append(float(i), {"cpu": 1.0})
        assert managed.flush_volatile() == 3  # disk still sick: stranded
        fault.heal()
        assert managed.flush_volatile() == 0
        assert len(managed.wal.replay()) == 3


# ---------------------------------------------------------------------------
# Non-fatal persistence paths: alias table and health journal
# ---------------------------------------------------------------------------
class TestSickDiskDoesNotAbort:
    def test_alias_save_failure_is_non_fatal(self, tmp_path, caplog):
        path = tmp_path / "models.aliases.json"
        store = AliasStore(path)
        store.record("cpu0", "cpu_usage", score=0.9)
        with fsmod.scoped_fs(StorageShim([FullDisk()])):
            with caplog.at_level("WARNING", logger="repro.schema.aliases"):
                assert store.save() is False
        assert "retained in memory" in caplog.text
        assert store.get("cpu0") == "cpu_usage"  # knowledge survives
        assert not path.exists()
        assert not list(tmp_path.glob("*.tmp"))  # no temp litter either

        # healed disk: the same in-memory table lands durably
        assert store.save() is True
        assert AliasStore(path).get("cpu0") == "cpu_usage"

    def test_health_journal_write_fault_never_loses_the_transition(
        self, tmp_path
    ):
        tracker = HealthTracker(
            ["alpha"],
            root_dir=tmp_path,
            durable=["alpha"],
            label_metrics=False,
        )
        with fsmod.scoped_fs(
            StorageShim([FullDisk(path_filter="health.log")])
        ):
            assert tracker.set_state(
                "alpha", "degraded", reason="storage: full_disk"
            )
        # the in-memory authoritative state changed even though the
        # journal line was swallowed by the full disk
        assert tracker.state("alpha") == "degraded"
        assert tracker.set_state("alpha", "healthy", reason="healed")
        tracker.close()
        journaled = read_health_journal(tmp_path, "alpha")
        assert [r["to"] for r in journaled] == ["healthy"]


# ---------------------------------------------------------------------------
# Observability of injected faults
# ---------------------------------------------------------------------------
class TestStorageMetrics:
    def test_fault_and_error_counters_advance(self, tmp_path):
        from repro.obs import metrics

        fired = metrics.REGISTRY.counter(
            "repro_storage_faults_injected_total", labelnames=("kind",)
        ).labels(kind="full_disk")
        write_errors = metrics.REGISTRY.counter(
            "repro_storage_write_errors_total"
        )
        degraded = metrics.REGISTRY.counter(
            "repro_storage_degraded_transitions_total"
        )
        fired_before = fired.value
        write_before = write_errors.value
        degraded_before = degraded.value

        shim = StorageShim([FullDisk()])
        managed = TenantDurability(
            "t0",
            TickWAL(tmp_path / "ticks.wal", fsync_every=1, fs=shim),
            CheckpointStore(tmp_path / "checkpoint.json", fs=shim),
            max_retries=0,
            backoff_s=0.0,
            probe_every=1000,
        )
        managed.append(0.0, {"cpu": 1.0})
        assert fired.value > fired_before
        assert write_errors.value > write_before
        assert degraded.value == degraded_before + 1
