"""Tests for the streaming detection engine (``repro.stream``).

The load-bearing suite here is :class:`TestExactEquivalence`: in
``mode="exact"`` the :class:`StreamingDetector` must produce *identical*
output — mask, regions, selected attributes, ε — to running the batch
:class:`AnomalyDetector` from scratch on every shared window of seeded
scenario runs, and both must match the frozen seed implementations in
``repro.stream.golden``.
"""

import numpy as np
import pytest

from repro.core.anomaly import AnomalyDetector, potential_power
from repro.core.separation import normalize_values
from repro.data.dataset import Dataset
from repro.eval.harness import replay_rows, simulate_run
from repro.stream import (
    RingBufferWindow,
    SlidingExtrema,
    SlidingMedian,
    StreamingDetector,
    StreamingDiagnoser,
)
from repro.stream.golden import GoldenAnomalyDetector


# ---------------------------------------------------------------------------
# order-statistic structures
# ---------------------------------------------------------------------------
class TestSlidingMedian:
    def test_matches_numpy_on_fifo_windows(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            # duplicate-heavy integer streams stress the lazy deletion
            stream = rng.integers(0, 6, size=120).astype(float)
            window = int(rng.integers(1, 15))
            sm = SlidingMedian()
            for i, value in enumerate(stream):
                sm.add(value)
                if i >= window:
                    sm.remove(stream[i - window])
                lo = max(0, i - window + 1)
                expected = float(np.median(stream[lo : i + 1]))
                assert sm.median() == expected

    def test_arbitrary_add_remove(self):
        rng = np.random.default_rng(7)
        live = []
        sm = SlidingMedian()
        for _ in range(500):
            if live and rng.random() < 0.45:
                value = live.pop(int(rng.integers(len(live))))
                sm.remove(value)
            else:
                value = float(rng.integers(0, 8))
                live.append(value)
                sm.add(value)
            if live:
                assert sm.median() == float(np.median(live))
                assert len(sm) == len(live)

    def test_empty_median_raises(self):
        with pytest.raises(ValueError):
            SlidingMedian().median()

    def test_empty_remove_raises(self):
        with pytest.raises(ValueError):
            SlidingMedian().remove(1.0)

    def test_even_count_is_midpoint(self):
        sm = SlidingMedian()
        for v in (1.0, 2.0, 3.0, 10.0):
            sm.add(v)
        assert sm.median() == 2.5


class TestSlidingExtrema:
    def test_tracks_min_max_with_expiry(self):
        ex = SlidingExtrema()
        values = [5.0, 3.0, 8.0, 1.0, 7.0]
        for seq, value in enumerate(values):
            ex.push(seq, value)
        assert (ex.min(), ex.max()) == (1.0, 8.0)
        ex.expire(4)  # only seq 4 (value 7.0) survives
        assert (ex.min(), ex.max()) == (7.0, 7.0)

    def test_matches_bruteforce_windows(self):
        rng = np.random.default_rng(3)
        stream = rng.normal(size=200)
        window = 17
        ex = SlidingExtrema()
        for seq, value in enumerate(stream):
            ex.push(seq, value)
            ex.expire(seq - window + 1)
            lo = max(0, seq - window + 1)
            assert ex.min() == stream[lo : seq + 1].min()
            assert ex.max() == stream[lo : seq + 1].max()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SlidingExtrema().min()
        with pytest.raises(ValueError):
            SlidingExtrema().max()


# ---------------------------------------------------------------------------
# ring buffer
# ---------------------------------------------------------------------------
class TestRingBufferWindow:
    def test_grows_until_capacity_then_evicts(self):
        window = RingBufferWindow(3, numeric=["a"])
        assert window.append(0.0, {"a": 10.0}) is None
        assert window.append(1.0, {"a": 11.0}) is None
        assert window.append(2.0, {"a": 12.0}) is None
        assert window.full
        evicted = window.append(3.0, {"a": 13.0})
        assert evicted is not None
        assert evicted.time == 0.0
        assert evicted.numeric == {"a": 10.0}
        assert window.n_rows == 3

    def test_views_after_wraparound(self):
        window = RingBufferWindow(4, numeric=["a"], categorical=["c"])
        for i in range(11):
            window.append(float(i), {"a": float(i) * 2.0}, {"c": f"v{i}"})
        assert list(window.timestamps) == [7.0, 8.0, 9.0, 10.0]
        assert list(window.column("a")) == [14.0, 16.0, 18.0, 20.0]
        assert list(window.column("c")) == ["v7", "v8", "v9", "v10"]
        assert window.oldest_seq == 7
        assert window.appended == 11

    def test_views_are_zero_copy(self):
        window = RingBufferWindow(4, numeric=["a"])
        for i in range(6):
            window.append(float(i), {"a": float(i)})
        assert window.column("a").base is window._numeric["a"]
        assert window.timestamps.base is window._ts

    def test_bounds_track_retained_rows(self):
        rng = np.random.default_rng(11)
        stream = rng.normal(size=60)
        window = RingBufferWindow(13, numeric=["a"])
        for i, value in enumerate(stream):
            window.append(float(i), {"a": float(value)})
            col = window.column("a")
            assert window.bounds("a") == (col.min(), col.max())

    def test_to_dataset_roundtrip(self):
        window = RingBufferWindow(5, numeric=["a", "b"], categorical=["c"])
        for i in range(8):
            window.append(
                float(i), {"a": float(i), "b": -float(i)}, {"c": "x"}
            )
        ds = window.to_dataset(name="snap")
        assert ds.name == "snap"
        assert ds.n_rows == 5
        assert list(ds.timestamps) == [3.0, 4.0, 5.0, 6.0, 7.0]
        assert list(ds.column("b")) == [-3.0, -4.0, -5.0, -6.0, -7.0]
        # the snapshot must be a copy, detached from the live buffer
        window.append(8.0, {"a": 0.0, "b": 0.0}, {"c": "x"})
        assert list(ds.timestamps) == [3.0, 4.0, 5.0, 6.0, 7.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RingBufferWindow(0, numeric=["a"])
        with pytest.raises(ValueError):
            RingBufferWindow(5, numeric=[])
        window = RingBufferWindow(2, numeric=["a"])
        window.append(0.0, {"a": 1.0})
        with pytest.raises(KeyError):
            window.column("missing")


# ---------------------------------------------------------------------------
# incremental potential power
# ---------------------------------------------------------------------------
class TestIncrementalPotentialPower:
    def test_matches_batch_on_sliding_windows(self):
        rng = np.random.default_rng(21)
        stream = rng.normal(size=150)
        stream[90:115] += 4.0
        capacity, w = 40, 10
        detector = StreamingDetector(capacity=capacity, window=w)
        for i, value in enumerate(stream):
            detector.observe(float(i), {"a": float(value)})
            window = detector.window
            lo, hi = window.bounds("a")
            power = detector._trackers["a"].potential_power(
                lo, hi, window.n_rows
            )
            expected = potential_power(
                normalize_values(window.column("a")), window=w
            )
            assert power == pytest.approx(expected, abs=1e-12)

    def test_zero_while_buffer_at_most_one_window(self):
        detector = StreamingDetector(capacity=30, window=10)
        for i in range(10):
            detector.observe(float(i), {"a": float(i % 3)})
            lo, hi = detector.window.bounds("a")
            assert (
                detector._trackers["a"].potential_power(lo, hi, i + 1) == 0.0
            )

    def test_zero_for_constant_attribute(self):
        detector = StreamingDetector(capacity=30, window=5)
        for i in range(30):
            detector.observe(float(i), {"a": 2.5})
        lo, hi = detector.window.bounds("a")
        assert detector._trackers["a"].potential_power(lo, hi, 30) == 0.0


# ---------------------------------------------------------------------------
# exact-mode equivalence: streaming == batch == frozen seed
# ---------------------------------------------------------------------------
def assert_results_equal(streamed, batched):
    assert np.array_equal(streamed.mask, batched.mask)
    assert streamed.regions == batched.regions
    assert streamed.selected_attributes == batched.selected_attributes
    assert streamed.eps == batched.eps


class TestExactEquivalence:
    @pytest.mark.parametrize(
        "anomaly_key,seed",
        [("cpu_saturation", 101), ("network_congestion", 202)],
    )
    def test_streaming_matches_batch_on_every_window(self, anomaly_key, seed):
        dataset, _, _ = simulate_run(
            anomaly_key, duration_s=40, seed=seed, normal_s=80
        )
        capacity = 60
        streaming = StreamingDetector(capacity=capacity, mode="exact")
        batch = AnomalyDetector()
        for t, numeric_row, categorical_row in replay_rows(dataset):
            streaming.observe(t, numeric_row, categorical_row)
            if not streaming.window.full:
                continue
            streamed = streaming.detect()
            batched = batch.detect(streaming.window.to_dataset())
            assert_results_equal(streamed, batched)

    @pytest.mark.parametrize("anomaly_key,seed", [("lock_contention", 303)])
    def test_batch_matches_frozen_seed_detector(self, anomaly_key, seed):
        dataset, _, _ = simulate_run(
            anomaly_key, duration_s=40, seed=seed, normal_s=80
        )
        live = AnomalyDetector().detect(dataset)
        golden = GoldenAnomalyDetector().detect(dataset)
        assert_results_equal(live, golden)

    def test_tick_equals_observe_plus_detect(self):
        rng = np.random.default_rng(5)
        stream = rng.normal(size=80)
        stream[50:70] += 5.0
        a = StreamingDetector(capacity=40)
        b = StreamingDetector(capacity=40)
        for i, value in enumerate(stream):
            update = a.tick(float(i), {"a": float(value)})
            b.observe(float(i), {"a": float(value)})
            assert_results_equal(update.result, b.detect())


# ---------------------------------------------------------------------------
# delta emission and incremental mode
# ---------------------------------------------------------------------------
def step_stream(n=200, start=120, width=20, seed=9, attrs=4):
    # width stays under cluster_fraction × capacity (0.2 × 120 = 24 rows)
    # so the abnormal cluster remains flagged until the region closes
    rng = np.random.default_rng(seed)
    columns = {}
    for i in range(attrs):
        values = rng.normal(10.0, 0.3, n)
        values[start : start + width] += 20.0 + rng.normal(0, 0.3, width)
        columns[f"m{i}"] = values
    return columns


class TestClosedRegions:
    def test_region_emitted_exactly_once(self):
        columns = step_stream()
        detector = StreamingDetector(capacity=120)
        emitted = []
        for i in range(200):
            row = {a: float(v[i]) for a, v in columns.items()}
            update = detector.tick(float(i), row)
            emitted.extend(
                (region.start, region.end)
                for region in update.closed_regions
            )
        assert len(emitted) == 1
        start, end = emitted[0]
        assert abs(start - 120.0) <= 5.0
        assert abs(end - 139.0) <= 5.0

    def test_no_emission_without_anomaly(self):
        rng = np.random.default_rng(13)
        detector = StreamingDetector(capacity=60)
        for i in range(120):
            update = detector.tick(
                float(i), {"a": float(rng.normal()), "b": float(rng.normal())}
            )
            assert update.closed_regions == []


class TestIncrementalMode:
    def test_bounded_divergence_and_fewer_reclusters(self):
        columns = step_stream(seed=17)
        exact = StreamingDetector(capacity=120, mode="exact")
        incremental = StreamingDetector(capacity=120, mode="incremental")
        agree = total = 0
        for i in range(200):
            row = {a: float(v[i]) for a, v in columns.items()}
            r_exact = exact.tick(float(i), row).result
            r_inc = incremental.tick(float(i), row).result
            agree += int(np.sum(r_exact.mask == r_inc.mask))
            total += r_exact.mask.shape[0]
        assert agree / total >= 0.95
        # it must actually skip work: strictly fewer re-clusters than the
        # exact mode, but still re-cluster periodically on turnover
        assert incremental.recluster_count < exact.recluster_count
        assert incremental.recluster_count >= 2

    def test_selected_change_forces_recluster(self):
        detector = StreamingDetector(
            capacity=40, mode="incremental", recluster_fraction=1.0
        )
        rng = np.random.default_rng(23)
        values = rng.normal(0.0, 0.1, 120)
        values[60:] += 5.0  # selection flips on when the step enters
        reclusters = 0
        for i, value in enumerate(values):
            update = detector.tick(float(i), {"a": float(value)})
            reclusters += int(update.reclustered)
        assert reclusters >= 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            StreamingDetector(mode="sometimes")
        with pytest.raises(ValueError):
            StreamingDetector(capacity=1)


class TestStreamingDiagnoser:
    def test_closed_region_is_diagnosed(self):
        from repro import DBSherlock

        columns = step_stream(attrs=3)
        diagnoser = StreamingDiagnoser(
            DBSherlock(), StreamingDetector(capacity=120)
        )
        for i in range(200):
            row = {a: float(v[i]) for a, v in columns.items()}
            diagnoser.tick(float(i), row)
        assert len(diagnoser.diagnoses) == 1
        region, explanation = diagnoser.diagnoses[0]
        assert abs(region.start - 120.0) <= 5.0
        assert explanation.predicates is not None


class TestAttributeFilter:
    def test_only_filtered_attributes_selected(self):
        columns = step_stream(attrs=3)
        detector = StreamingDetector(capacity=120, attributes=["m0"])
        last = None
        for i in range(170):
            row = {a: float(v[i]) for a, v in columns.items()}
            last = detector.tick(float(i), row).result
        assert last.selected_attributes == ["m0"]
