"""Unit tests for the simulated user study (Table 3)."""

import numpy as np
import pytest

from repro.core.causal import CausalModel
from repro.core.predicates import NumericPredicate
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec
from repro.eval.study import COHORTS, Cohort, StudyQuestion, UserStudy


def question(correct="X", seed=0):
    values = np.asarray([1.0] * 60 + [10.0] * 30 + [1.0] * 30)
    ds = Dataset(np.arange(120, dtype=float), numeric={"m": values})
    spec = RegionSpec(abnormal=[Region(60.0, 89.0)])
    return StudyQuestion(
        dataset=ds,
        spec=spec,
        correct_cause=correct,
        options=[correct, "W1", "W2", "W3"],
    )


def models():
    return {
        "X": CausalModel("X", [NumericPredicate("m", lower=5.0)]),
        "W1": CausalModel("W1", [NumericPredicate("m", upper=5.0)]),
    }


class TestStudyQuestion:
    def test_correct_must_be_an_option(self):
        with pytest.raises(ValueError):
            StudyQuestion(
                dataset=question().dataset,
                spec=question().spec,
                correct_cause="Z",
                options=["A", "B", "C", "D"],
            )

    def test_options_distinct(self):
        q = question()
        with pytest.raises(ValueError):
            StudyQuestion(q.dataset, q.spec, "X", ["X", "X", "B", "C"])


class TestUserStudy:
    def test_zero_noise_reader_is_optimal(self):
        study = UserStudy(models(), [question() for _ in range(5)])
        score = study.simulate_participant(0.0, np.random.default_rng(0))
        assert score == 5

    def test_high_noise_reader_is_random(self):
        study = UserStudy(models(), [question() for _ in range(10)])
        rng = np.random.default_rng(1)
        scores = [study.simulate_participant(1000.0, rng) for _ in range(200)]
        assert np.mean(scores) == pytest.approx(2.5, abs=0.5)

    def test_competence_ordering(self):
        study = UserStudy(models(), [question() for _ in range(10)])
        rng = np.random.default_rng(2)
        low = np.mean([study.simulate_participant(5.0, rng) for _ in range(100)])
        high = np.mean([study.simulate_participant(0.1, rng) for _ in range(100)])
        assert high > low

    def test_random_baseline(self):
        study = UserStudy(models(), [question() for _ in range(10)])
        assert study.random_baseline() == pytest.approx(2.5)

    def test_run_cohort_shape(self):
        study = UserStudy(models(), [question() for _ in range(10)])
        mean, raw = study.run_cohort(Cohort("test", 7, 0.2), seed=3)
        assert len(raw) == 7
        assert 0.0 <= mean <= 10.0

    def test_empty_questions_rejected(self):
        with pytest.raises(ValueError):
            UserStudy(models(), [])

    def test_paper_cohorts_defined(self):
        names = [c.name for c in COHORTS]
        assert len(COHORTS) == 3
        assert names[0].startswith("Preliminary")
        assert [c.n_participants for c in COHORTS] == [20, 15, 13]

    def test_unknown_option_reads_zero_evidence(self):
        # distractors without models never outrank the evidenced answer
        study = UserStudy(models(), [question()])
        score = study.simulate_participant(0.0, np.random.default_rng(4))
        assert score == 1
