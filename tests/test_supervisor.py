"""Tests for checkpoint/restore and the crash-recovery supervisor.

The contract under test: :meth:`StreamingDetector.checkpoint` is
JSON-able and :meth:`from_checkpoint` rebuilds a detector whose
subsequent output is *bit-identical* to the uninterrupted one, and
:class:`StreamSupervisor` turns a mid-stream :class:`CollectorFault`
into a restart whose final region output matches a run that never
crashed.
"""

import json

import numpy as np
import pytest

from repro.eval.harness import replay_rows, simulate_run
from repro.faults import CollectorCrash, CollectorFault, FaultPlan
from repro.stream import StreamingDetector, StreamSupervisor


def scenario_rows(n_ticks=140):
    # a short anomaly relative to the window, so the detector both opens
    # and *closes* abnormal regions within the stream
    dataset, _, _ = simulate_run(
        "cpu_saturation", duration_s=20, seed=17, normal_s=120
    )
    return list(replay_rows(dataset))[:n_ticks]


def make_detector(**kwargs):
    return StreamingDetector(capacity=120, min_region_s=5.0, **kwargs)


def region_bounds(regions):
    return [(r.start, r.end) for r in regions]


# ---------------------------------------------------------------------------
# checkpoint / restore
# ---------------------------------------------------------------------------
class TestCheckpointRestore:
    def test_checkpoint_is_json_serializable(self):
        detector = make_detector()
        rows = scenario_rows(80)
        for t, num, cat in rows:
            detector.tick(t, num, cat)
        state = json.loads(json.dumps(detector.checkpoint()))
        restored = StreamingDetector.from_checkpoint(state)
        assert restored.window.n_rows == detector.window.n_rows

    def test_restore_is_replay_exact(self):
        rows = scenario_rows()
        baseline = make_detector()
        resumed = None
        for i, (t, num, cat) in enumerate(rows):
            base_update = baseline.tick(t, num, cat)
            if i == 99:  # checkpoint mid-stream, through a JSON round trip
                state = json.loads(json.dumps(baseline.checkpoint()))
                resumed = StreamingDetector.from_checkpoint(state)
                continue
            if resumed is not None:
                res_update = resumed.tick(t, num, cat)
                assert np.array_equal(
                    base_update.result.mask, res_update.result.mask
                )
                assert region_bounds(
                    base_update.result.regions
                ) == region_bounds(res_update.result.regions)
                assert (
                    base_update.result.selected_attributes
                    == res_update.result.selected_attributes
                )
        assert resumed is not None

    def test_restore_preserves_counters_and_emitted_regions(self):
        detector = make_detector()
        for t, num, cat in scenario_rows(120):
            detector.tick(t, num, cat)
        restored = StreamingDetector.from_checkpoint(detector.checkpoint())
        assert restored.tick_count == detector.tick_count
        assert restored.dropped_ticks == detector.dropped_ticks
        assert restored.sanitized_values == detector.sanitized_values
        assert restored.quarantined == detector.quarantined

    def test_version_mismatch_rejected(self):
        state = make_detector().checkpoint()
        state["version"] = 999
        with pytest.raises(ValueError):
            StreamingDetector.from_checkpoint(state)


# ---------------------------------------------------------------------------
# degraded-input hygiene inside the detector
# ---------------------------------------------------------------------------
class TestDetectorHygiene:
    def test_non_monotone_timestamps_dropped(self):
        detector = make_detector()
        assert detector.observe(0.0, {"a": 1.0})
        assert detector.observe(1.0, {"a": 2.0})
        assert not detector.observe(1.0, {"a": 3.0})  # stale repeat
        assert not detector.observe(0.5, {"a": 4.0})  # goes backwards
        assert detector.dropped_ticks == 2
        assert detector.window.n_rows == 2

    def test_nan_cells_sanitized_with_last_seen(self):
        detector = make_detector()
        detector.observe(0.0, {"a": 5.0})
        detector.observe(1.0, {"a": float("nan")})
        assert detector.sanitized_values == 1
        assert detector.window.column("a")[1] == 5.0

    def test_missing_cells_filled(self):
        detector = make_detector()
        detector.observe(0.0, {"a": 5.0, "b": 7.0})
        detector.observe(1.0, {"a": 6.0})  # 'b' vanished this tick
        assert detector.sanitized_values == 1
        assert detector.window.column("b")[1] == 7.0

    def test_stuck_attribute_quarantined_then_released(self):
        detector = make_detector(quarantine_after=3)
        for i in range(5):
            detector.observe(float(i), {"a": 42.0, "b": float(i)})
        assert "a" in detector.quarantined
        assert "b" not in detector.quarantined
        detector.observe(5.0, {"a": 43.0, "b": 5.0})  # counter un-sticks
        assert "a" not in detector.quarantined


# ---------------------------------------------------------------------------
# crash-recovery supervisor
# ---------------------------------------------------------------------------
class TestStreamSupervisor:
    def test_recovers_and_matches_uninterrupted_run(self):
        rows = scenario_rows()

        baseline = make_detector()
        expected_ends = set()
        for t, num, cat in rows:
            for region in baseline.tick(t, num, cat).closed_regions:
                expected_ends.add(region.end)
        assert expected_ends  # the scenario must exercise region closure

        crash = FaultPlan([CollectorCrash(at_tick=95)], seed=29)

        def source_factory(attempt):
            if attempt == 0:
                return crash.wrap(iter(rows))
            return iter(rows)

        supervisor = StreamSupervisor(
            make_detector(),
            source_factory,
            checkpoint_every=10,
            sleep=lambda s: None,
        )
        report = supervisor.run()
        assert report.restarts == 1
        assert report.backoff_waits == [supervisor.backoff_s]
        assert report.checkpoints > 0
        assert {r.end for r in report.closed_regions} == expected_ends

    def test_backoff_grows_without_progress_and_resets_on_progress(self):
        rows = scenario_rows(60)
        calls = []

        def source_factory(attempt):
            calls.append(attempt)
            if attempt < 3:
                # dies immediately: no progress, delay keeps doubling
                def dead():
                    raise CollectorFault("down")
                    yield  # pragma: no cover

                return dead()
            if attempt == 3:
                # makes progress then dies: delay resets
                return FaultPlan(
                    [CollectorCrash(at_tick=20)], seed=1
                ).wrap(iter(rows))
            return iter(rows)

        supervisor = StreamSupervisor(
            make_detector(),
            source_factory,
            max_retries=10,
            backoff_s=0.1,
            backoff_factor=2.0,
            sleep=lambda s: None,
        )
        report = supervisor.run()
        assert report.restarts == 4
        assert report.backoff_waits == pytest.approx([0.1, 0.2, 0.4, 0.1])
        assert calls == [0, 1, 2, 3, 4]

    def test_reraises_past_max_retries(self):
        def source_factory(attempt):
            def dead():
                raise CollectorFault("hard down")
                yield  # pragma: no cover

            return dead()

        supervisor = StreamSupervisor(
            make_detector(),
            source_factory,
            max_retries=2,
            sleep=lambda s: None,
        )
        with pytest.raises(CollectorFault):
            supervisor.run()

    def test_clean_source_needs_no_restart(self):
        rows = scenario_rows(60)
        supervisor = StreamSupervisor(
            make_detector(),
            lambda attempt: iter(rows),
            sleep=lambda s: None,
        )
        report = supervisor.run()
        assert report.restarts == 0
        assert report.backoff_waits == []
        assert report.ticks_processed == 60

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StreamSupervisor(make_detector(), lambda a: [], max_retries=-1)
        with pytest.raises(ValueError):
            StreamSupervisor(make_detector(), lambda a: [], backoff_s=0.0)
        with pytest.raises(ValueError):
            StreamSupervisor(
                make_detector(), lambda a: [], checkpoint_every=-1
            )
