"""Unit tests for ASCII visualisation."""

import numpy as np
import pytest

from repro.core.explain import DBSherlock
from repro.core.generator import PredicateGenerator
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec
from repro.viz.ascii import (
    incident_report,
    partition_strip,
    plot_series,
    sparkline,
)


def step_dataset(n=120):
    values = np.asarray([2.0] * 60 + [8.0] * 30 + [2.0] * 30, dtype=float)
    return (
        Dataset(np.arange(n, dtype=float),
                numeric={"txn.avg_latency_ms": values}),
        RegionSpec(abnormal=[Region(60.0, 89.0)]),
    )


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_resampled_width(self):
        assert len(sparkline(list(range(100)), width=20)) == 20

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestPlotSeries:
    def test_contains_attribute_name(self):
        ds, spec = step_dataset()
        assert "txn.avg_latency_ms" in plot_series(ds, "txn.avg_latency_ms")

    def test_region_footer(self):
        ds, spec = step_dataset()
        out = plot_series(ds, "txn.avg_latency_ms", spec)
        assert "#" in out and "abnormal" in out

    def test_no_spec_no_footer(self):
        ds, _ = step_dataset()
        assert "abnormal" not in plot_series(ds, "txn.avg_latency_ms")

    def test_height_rows(self):
        ds, _ = step_dataset()
        out = plot_series(ds, "txn.avg_latency_ms", height=6)
        # header + 6 rows + axis
        assert len(out.splitlines()) == 8

    def test_step_visible(self):
        ds, _ = step_dataset()
        lines = plot_series(ds, "txn.avg_latency_ms", height=5).splitlines()
        top_row = lines[1]
        bottom_row = lines[5]
        assert "*" in top_row and "*" in bottom_row


class TestPartitionStrip:
    def artifacts(self):
        ds, spec = step_dataset()
        arts = PredicateGenerator().generate_with_artifacts(
            ds, spec, attributes=["txn.avg_latency_ms"]
        )
        return arts["txn.avg_latency_ms"]

    def test_initial_strip_has_both_labels(self):
        strip = partition_strip(self.artifacts(), stage="initial")
        assert "A" in strip and "N" in strip

    def test_filled_strip_no_empty(self):
        strip = partition_strip(self.artifacts(), stage="filled")
        payload = strip.split(": ", 1)[1]
        assert "·" not in payload

    def test_unknown_stage_reported(self):
        art = self.artifacts()
        art.labels_filtered = None
        assert "not available" in partition_strip(art, stage="filtered")

    def test_width_respected(self):
        strip = partition_strip(self.artifacts(), width=40)
        assert len(strip.split(": ", 1)[1]) <= 40


class TestIncidentReport:
    def test_report_sections(self):
        ds, spec = step_dataset()
        explanation = DBSherlock().explain(ds, spec)
        report = incident_report(ds, spec, explanation)
        assert "Incident report" in report
        assert "abnormal region" in report
        assert "explanatory predicates" in report
        assert "likely causes" in report

    def test_predicate_cap(self):
        ds, spec = step_dataset()
        explanation = DBSherlock().explain(ds, spec)
        report = incident_report(ds, spec, explanation, max_predicates=0)
        if len(explanation.predicates):
            assert "more" in report
