"""Tests for the write-ahead tick log and durable supervisor recovery.

The contract: with a ``wal_dir``, every tick is logged before the
detector sees it, recovery replays the log through a bit-exact restored
detector, and the source is never asked to re-deliver a tick —
``reprocessed_ticks == 0`` and the final region output is identical to
an uninterrupted run.
"""

import numpy as np
import pytest

from repro.eval.harness import replay_rows, simulate_run
from repro.faults import CollectorCrash, FaultPlan
from repro.stream import StreamingDetector, StreamSupervisor
from repro.stream.wal import CheckpointStore, TickWAL


def scenario_rows(n_ticks=140):
    dataset, _, _ = simulate_run(
        "cpu_saturation", duration_s=20, seed=17, normal_s=120
    )
    return list(replay_rows(dataset))[:n_ticks]


def make_detector(**kwargs):
    return StreamingDetector(capacity=120, min_region_s=5.0, **kwargs)


def region_bounds(regions):
    return [(r.start, r.end) for r in regions]


# ---------------------------------------------------------------------------
# TickWAL
# ---------------------------------------------------------------------------
class TestTickWAL:
    def test_append_replay_round_trip(self, tmp_path):
        wal = TickWAL(tmp_path / "ticks.wal")
        ticks = [
            (0.0, {"a": 1.0, "b": 2.5}, {"state": "ok"}),
            (1.0, {"a": 1.5, "b": -3.0}, {"state": "warn"}),
            (2.0, {"a": float(np.float64(7.25)), "b": 0.0}, {}),
        ]
        for t, num, cat in ticks:
            wal.append(t, num, cat)
        assert wal.replay() == ticks
        wal.close()

    def test_replay_survives_reopen(self, tmp_path):
        path = tmp_path / "ticks.wal"
        with TickWAL(path) as wal:
            wal.append(0.0, {"a": 1.0}, {})
            wal.append(1.0, {"a": 2.0}, {})
        reopened = TickWAL(path)
        assert [t for t, _, _ in reopened.replay()] == [0.0, 1.0]
        reopened.close()

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "ticks.wal"
        with TickWAL(path) as wal:
            wal.append(0.0, {"a": 1.0}, {})
            wal.append(1.0, {"a": 2.0}, {})
        # crash mid-append: a final record cut off without its newline
        active = sorted(path.glob("seg-*.wal"))[-1]
        with open(active, "a") as fh:
            fh.write('[2.0, {"a": 3.')
        reopened = TickWAL(path)
        ticks, report = reopened.replay_report()
        assert [t for t, _, _ in ticks] == [0.0, 1.0]
        assert report.torn_tail
        assert report.corrupt_records == 0
        reopened.close()

    def test_torn_record_with_newline_is_skipped(self, tmp_path):
        path = tmp_path / "ticks.wal"
        with TickWAL(path) as wal:
            wal.append(0.0, {"a": 1.0}, {})
        active = sorted(path.glob("seg-*.wal"))[-1]
        with open(active, "a") as fh:
            fh.write('[1.0, {"a": \n')
        reopened = TickWAL(path)
        ticks, report = reopened.replay_report()
        assert [t for t, _, _ in ticks] == [0.0]
        assert report.corrupt_records == 1
        reopened.close()

    def test_append_after_torn_tail_does_not_merge_records(self, tmp_path):
        """Crash → recover → append → crash: opening seals the torn
        tail, so the post-recovery append starts a fresh line instead
        of merging with the torn bytes into one CRC-failing record."""
        path = tmp_path / "ticks.wal"
        with TickWAL(path, fsync_every=1) as wal:
            wal.append(0.0, {"a": 1.0}, {})
        active = sorted(path.glob("seg-*.wal"))[-1]
        with open(active, "a") as fh:
            fh.write('deadbeef [1.0, {"a": 2.')  # crash mid-append
        recovered = TickWAL(path, fsync_every=1)
        recovered.append(2.0, {"a": 3.0}, {})  # fsynced: acked-durable
        recovered.close()
        reader = TickWAL(path)
        ticks, report = reader.replay_report()
        reader.close()
        assert [t for t, _, _ in ticks] == [0.0, 2.0]
        assert report.corrupt_records == 0

    def test_sealed_torn_tail_still_reported(self, tmp_path):
        """The seal truncates the torn bytes but replay still reports
        the crash signature (and the clean prefix survives on disk)."""
        path = tmp_path / "ticks.wal"
        with TickWAL(path) as wal:
            wal.append(0.0, {"a": 1.0}, {})
        active = sorted(path.glob("seg-*.wal"))[-1]
        with open(active, "a") as fh:
            fh.write('[1.0, {"a": 2.')
        reopened = TickWAL(path)
        ticks, report = reopened.replay_report()
        reopened.close()
        assert [t for t, _, _ in ticks] == [0.0]
        assert report.torn_tail
        assert report.corrupt_records == 0
        assert active.read_bytes().endswith(b"\n")  # tail gone from disk

    def test_first_checkpoint_mark_deletes_nothing(self, tmp_path):
        """A single mark must not retire pre-checkpoint segments: the
        floor only advances from the second mark of a handle's life."""
        path = tmp_path / "ticks.wal"
        wal = TickWAL(path, fsync_every=1)
        wal.append(0.0, {"a": 1.0}, {})
        wal.mark_checkpoint()
        assert [t for t, _, _ in wal.replay()] == [0.0]
        wal.append(1.0, {"a": 2.0}, {})
        wal.mark_checkpoint()  # second mark: now pre-first-mark goes
        assert [t for t, _, _ in wal.replay()] == [1.0]
        wal.close()

    def test_first_checkpoint_after_reopen_retains_fallback_segments(
        self, tmp_path
    ):
        """Marks do not survive the process: after a restart the first
        mark must keep every on-disk segment, because the surviving
        previous checkpoint generation may still need them."""
        path = tmp_path / "ticks.wal"
        with TickWAL(path, fsync_every=1) as wal:
            wal.append(0.0, {"a": 1.0}, {})
            wal.mark_checkpoint()
            wal.append(1.0, {"a": 2.0}, {})
        reopened = TickWAL(path, fsync_every=1)
        reopened.mark_checkpoint()  # first mark of this lifetime
        assert [t for t, _, _ in reopened.replay()] == [0.0, 1.0]
        reopened.append(2.0, {"a": 3.0}, {})
        reopened.mark_checkpoint()  # second mark: retention resumes
        assert [t for t, _, _ in reopened.replay()] == [2.0]
        reopened.close()

    def test_interrupted_legacy_migration_is_completed(self, tmp_path):
        """A crash between the migration's two renames parks the legacy
        log at '<name>.legacy-migrate'; the next open adopts it as
        segment 0 instead of abandoning it."""
        path = tmp_path / "ticks.wal"
        orphan = tmp_path / "ticks.wal.legacy-migrate"
        orphan.write_text('[0.0, {"a": 1.0}, {}]\n')
        wal = TickWAL(path)
        assert wal.replay() == [(0.0, {"a": 1.0}, {})]
        assert not orphan.exists()
        wal.append(1.0, {"a": 2.0}, {})
        assert [t for t, _, _ in wal.replay()] == [0.0, 1.0]
        wal.close()

    def test_truncate_clears_the_log(self, tmp_path):
        wal = TickWAL(tmp_path / "ticks.wal")
        wal.append(0.0, {"a": 1.0}, {})
        wal.truncate()
        assert wal.replay() == []
        wal.append(5.0, {"a": 9.0}, {})
        assert [t for t, _, _ in wal.replay()] == [5.0]
        wal.close()

    def test_fsync_batching_still_replays_everything(self, tmp_path):
        wal = TickWAL(tmp_path / "ticks.wal", fsync_every=50)
        for i in range(7):  # fewer than one fsync batch
            wal.append(float(i), {"a": float(i)}, {})
        assert len(wal.replay()) == 7
        wal.close()

    def test_invalid_fsync_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TickWAL(tmp_path / "ticks.wal", fsync_every=0)


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.json")
        store.save({"detector": {"x": 1}, "processed_until": 42.0})
        assert store.load() == {"detector": {"x": 1}, "processed_until": 42.0}

    def test_missing_checkpoint_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path / "absent.json").load() is None

    def test_corrupt_checkpoint_is_none(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"torn":')
        assert CheckpointStore(path).load() is None

    def test_save_replaces_atomically(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = CheckpointStore(path)
        store.save({"generation": 1})
        store.save({"generation": 2})
        assert store.load() == {"generation": 2}
        assert not path.with_suffix(".json.tmp").exists()

    def test_previous_generation_survives_save(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.json")
        store.save({"generation": 1})
        store.save({"generation": 2})
        assert store.previous_path.exists()
        # rot the newest generation: load falls back to the previous
        store.path.write_text('{"crc32": 0, "state": {"generation": 9}}')
        assert store.load() == {"generation": 1}


# ---------------------------------------------------------------------------
# Supervisor + WAL: crash recovery with zero re-processed ticks
# ---------------------------------------------------------------------------
class TestSupervisorWithWAL:
    @pytest.mark.parametrize("crash_at", [13, 45, 95, 101])
    def test_crash_recovery_reprocesses_nothing(self, tmp_path, crash_at):
        """Crash at arbitrary offsets relative to the checkpoint cadence:
        the WAL covers the post-checkpoint gap, so recovery never
        re-pulls a tick and the regions match the uninterrupted run
        bitwise."""
        rows = scenario_rows()

        baseline = make_detector()
        expected = []
        for t, num, cat in rows:
            expected.extend(baseline.tick(t, num, cat).closed_regions)

        crash = FaultPlan([CollectorCrash(at_tick=crash_at)], seed=29)

        def source_factory(attempt):
            return crash.wrap(iter(rows)) if attempt == 0 else iter(rows)

        supervisor = StreamSupervisor(
            make_detector(),
            source_factory,
            checkpoint_every=10,
            sleep=lambda s: None,
            wal_dir=tmp_path,
        )
        report = supervisor.run()
        assert report.restarts == 1
        assert report.reprocessed_ticks == 0
        assert report.wal_replayed_ticks == crash_at % 10
        assert region_bounds(report.closed_regions) == region_bounds(expected)

    def test_durable_recovery_across_supervisor_instances(self, tmp_path):
        """A dead process's checkpoint + WAL restore into a fresh
        supervisor: the second run continues exactly where the first
        stopped, re-processing zero ticks, and the union of the two
        runs' regions matches an uninterrupted run."""
        rows = scenario_rows()
        half = len(rows) // 2 + 3  # not on the checkpoint cadence

        baseline = make_detector()
        expected = []
        for t, num, cat in rows:
            expected.extend(baseline.tick(t, num, cat).closed_regions)

        first = StreamSupervisor(
            make_detector(),
            lambda attempt: iter(rows[:half]),  # "process dies" mid-stream
            checkpoint_every=10,
            sleep=lambda s: None,
            wal_dir=tmp_path,
        )
        report_a = first.run()
        assert report_a.ticks_processed == half

        second = StreamSupervisor(
            make_detector(),  # a fresh detector: state must come from disk
            lambda attempt: iter(rows),  # the full stream again
            checkpoint_every=10,
            sleep=lambda s: None,
            wal_dir=tmp_path,
        )
        report_b = second.run()
        assert report_b.reprocessed_ticks == 0
        # everything after the first run's last durable checkpoint came
        # back from the WAL, the rest from the (skipped-forward) source
        assert report_b.wal_replayed_ticks == half % 10
        assert report_b.ticks_processed == len(rows) - half
        combined = region_bounds(report_a.closed_regions) + [
            b
            for b in region_bounds(report_b.closed_regions)
            if b not in region_bounds(report_a.closed_regions)
        ]
        assert combined == region_bounds(expected)

    def test_recovered_detector_is_bitwise_identical(self, tmp_path):
        """After WAL recovery the detector's window state equals the
        uninterrupted detector's, value for value."""
        rows = scenario_rows(120)
        crash = FaultPlan([CollectorCrash(at_tick=57)], seed=3)

        baseline = make_detector()
        for t, num, cat in rows:
            baseline.tick(t, num, cat)

        def source_factory(attempt):
            return crash.wrap(iter(rows)) if attempt == 0 else iter(rows)

        supervisor = StreamSupervisor(
            make_detector(),
            source_factory,
            checkpoint_every=10,
            sleep=lambda s: None,
            wal_dir=tmp_path,
        )
        supervisor.run()
        recovered = supervisor.detector
        assert recovered.window.n_rows == baseline.window.n_rows
        for attr in baseline.window.numeric_attributes:
            assert np.array_equal(
                recovered.window.column(attr), baseline.window.column(attr)
            )
        assert np.array_equal(
            recovered.window.timestamps, baseline.window.timestamps
        )

    def test_wal_retained_after_checkpoint(self, tmp_path):
        rows = scenario_rows(25)
        supervisor = StreamSupervisor(
            make_detector(),
            lambda attempt: iter(rows),
            checkpoint_every=10,
            sleep=lambda s: None,
            wal_dir=tmp_path,
        )
        supervisor.run()
        # 25 ticks, checkpoints at 10 and 20: segments older than the
        # *previous* checkpoint mark are retired, so ticks 11-25 stay on
        # disk (generation-fallback replay needs 11-20) ...
        leftover = TickWAL(tmp_path / "ticks.wal")
        raw = leftover.replay()
        assert len(raw) == 15
        leftover.close()
        # ... but only the 5 post-checkpoint ticks are *effective*:
        # replay filters by the stored processed_until watermark
        stored = CheckpointStore(tmp_path / "checkpoint.json").load()
        until = float(stored["processed_until"])
        assert sum(1 for t, _, _ in raw if t > until) == 5

    def test_no_wal_dir_keeps_legacy_behaviour(self):
        rows = scenario_rows(30)
        supervisor = StreamSupervisor(
            make_detector(),
            lambda attempt: iter(rows),
            checkpoint_every=10,
            sleep=lambda s: None,
        )
        report = supervisor.run()
        assert report.wal_replayed_ticks == 0
        assert report.reprocessed_ticks == 0
