"""Unit tests for workload specs, mixes, and the closed-loop client pool."""

import numpy as np
import pytest

from repro.workload.client import TerminalPool
from repro.workload.spec import TransactionType, WorkloadSpec
from repro.workload.tpcc import TPCC_TYPES, tpcc_workload
from repro.workload.tpce import TPCE_TYPES, tpce_workload


class TestTransactionType:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            TransactionType("t", weight=-1.0, cpu_ms=1.0, logical_reads=1.0)

    def test_dml_fractions_capped(self):
        with pytest.raises(ValueError):
            TransactionType(
                "t", weight=1.0, cpu_ms=1.0, logical_reads=1.0,
                insert_fraction=0.6, update_fraction=0.6,
            )


class TestWorkloadSpec:
    def test_weights_normalized(self):
        spec = tpcc_workload()
        assert spec.weights.sum() == pytest.approx(1.0)

    def test_mix_average(self):
        types = [
            TransactionType("a", weight=1.0, cpu_ms=2.0, logical_reads=10.0),
            TransactionType("b", weight=1.0, cpu_ms=4.0, logical_reads=20.0),
        ]
        spec = WorkloadSpec(name="w", types=types)
        assert spec.mix_average("cpu_ms") == pytest.approx(3.0)
        assert spec.mix_average("logical_reads") == pytest.approx(15.0)

    def test_empty_types_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", types=[])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                name="w",
                types=[TransactionType("a", weight=0.0, cpu_ms=1.0,
                                       logical_reads=1.0)],
            )

    def test_with_overrides(self):
        spec = tpcc_workload().with_overrides(n_terminals=16, base_tps=100.0)
        assert spec.n_terminals == 16
        assert spec.base_tps == 100.0
        assert spec.name == "tpcc"

    def test_type_names_order(self):
        assert tpcc_workload().type_names[0] == "NewOrder"


class TestTpccMix:
    def test_five_types(self):
        assert len(TPCC_TYPES) == 5

    def test_canonical_mix_weights(self):
        spec = tpcc_workload()
        by_name = dict(zip(spec.type_names, spec.weights))
        assert by_name["NewOrder"] == pytest.approx(0.45)
        assert by_name["Payment"] == pytest.approx(0.43)

    def test_write_heavy(self):
        assert tpcc_workload().read_fraction < 0.15


class TestTpceMix:
    def test_ten_types(self):
        assert len(TPCE_TYPES) == 10

    def test_read_intensive(self):
        # TPC-E is far more read-heavy than TPC-C (Chen et al. 2011)
        assert tpce_workload().read_fraction > 0.70

    def test_write_surface_smaller_than_tpcc(self):
        tpcc, tpce = tpcc_workload(), tpce_workload()
        assert tpce.mix_average("write_rows") < tpcc.mix_average("write_rows")
        assert tpce.mix_average("lock_rows") < tpcc.mix_average("lock_rows")


class TestTerminalPool:
    def test_open_arrival_cap(self):
        pool = TerminalPool(n_terminals=1000, think_time_s=0.001, target_rate=500.0)
        assert pool.offered_tps(latency_s=0.0) == 500.0

    def test_closed_loop_limits_under_latency(self):
        pool = TerminalPool(n_terminals=100, think_time_s=0.05, target_rate=1e9)
        fast = pool.offered_tps(latency_s=0.001)
        slow = pool.offered_tps(latency_s=0.5)
        assert slow < fast
        assert slow == pytest.approx(100 / 0.55)

    def test_network_delay_masks_spike(self):
        # the Section 8.7 phenomenon: extra latency throttles offered load
        pool = TerminalPool(n_terminals=256, think_time_s=0.05, target_rate=3600.0)
        congested = pool.offered_tps(latency_s=0.305)
        assert congested < 1000.0

    def test_concurrency_littles_law(self):
        pool = TerminalPool(n_terminals=100, think_time_s=0.05, target_rate=1e9)
        latency = 0.01
        assert pool.concurrency(latency) == pytest.approx(
            pool.offered_tps(latency) * latency
        )
